open Interaction

(* Can any concrete action match both patterns?  [Free] positions match
   nothing, so a pattern containing one is inert and overlaps nothing. *)
let patterns_overlap (p : Alpha.pattern) (q : Alpha.pattern) =
  let inert pat =
    List.exists (function Alpha.Free _ -> true | Alpha.Val _ | Alpha.Bound _ -> false)
      pat.Alpha.pargs
  in
  String.equal p.Alpha.pname q.Alpha.pname
  && List.length p.Alpha.pargs = List.length q.Alpha.pargs
  && (not (inert p))
  && (not (inert q))
  && List.for_all2
       (fun a b ->
         match (a, b) with
         | Alpha.Val v, Alpha.Val w -> String.equal v w
         | Alpha.Val _, Alpha.Bound _ | Alpha.Bound _, Alpha.Val _
         | Alpha.Bound _, Alpha.Bound _ ->
           true
         | Alpha.Free _, _ | _, Alpha.Free _ -> false)
       p.Alpha.pargs q.Alpha.pargs

let alphas_overlap a b =
  List.exists (fun p -> List.exists (patterns_overlap p) b) a

let rec flatten_sync = function
  | Expr.Sync (y, z) -> flatten_sync y @ flatten_sync z
  | e -> [ e ]

let partition e =
  let operands = flatten_sync e in
  let with_alpha = List.map (fun op -> (op, Alpha.of_expr op)) operands in
  (* union of overlapping groups, preserving operand order inside groups *)
  let insert groups (op, al) =
    let interferes (_, gal) = alphas_overlap al gal in
    let hits, rest = List.partition interferes groups in
    let merged_ops = List.concat_map fst hits @ [ op ] in
    let merged_alpha = List.concat_map snd hits @ al in
    rest @ [ (merged_ops, merged_alpha) ]
  in
  let groups = List.fold_left insert [] with_alpha in
  List.map (fun (ops, _) -> Expr.sync_list ops) groups

type t = {
  members : (Manager.t * Alpha.t) list;
}

let of_components components =
  { members = List.map (fun c -> (Manager.create c, Alpha.of_expr c)) components }

let create e = of_components (partition e)
let size t = List.length t.members
let managers t = List.map fst t.members

let relevant t c =
  List.filter_map (fun (m, al) -> if Alpha.mem al c then Some m else None) t.members

let permitted t c = List.for_all (fun m -> Manager.permitted m c) (relevant t c)

(* Message accounting for the two-phase round: an ask is a request plus a
   reply (2 messages); a confirm or abort is fire-and-forget (1). *)
let m_rounds = Telemetry.counter "federation_rounds_total"
let m_msgs = Telemetry.counter "federation_messages_total"

let execute t ~client c =
  let members = relevant t c in
  let run () =
    Telemetry.incr m_rounds;
    (* phase 1: collect grants from every relevant manager *)
    let rec grant acc = function
      | [] -> Ok (List.rev acc)
      | m :: rest -> (
        Telemetry.add m_msgs 2;
        match Manager.ask m ~client c with
        | Manager.Granted -> grant (m :: acc) rest
        | Manager.Denied | Manager.Busy -> Error acc)
    in
    match grant [] members with
    | Ok granted ->
      (* phase 2: commit everywhere *)
      List.iter
        (fun m ->
          Telemetry.add m_msgs 1;
          Manager.confirm m ~client c)
        granted;
      true
    | Error granted ->
      List.iter
        (fun m ->
          Telemetry.add m_msgs 1;
          Manager.abort m ~client c)
        granted;
      false
  in
  if not !Telemetry.on then run ()
  else
    Telemetry.span "federation.execute"
      ~fields:
        [ ("action", Telemetry.Str (Action.concrete_to_string c));
          ("managers", Telemetry.Int (List.length members)) ]
      ~exit:(fun ok -> [ ("ok", Telemetry.Bool ok) ])
      run

let loads t =
  List.map (fun (m, _) -> ((Manager.stats m).Manager.asks, Manager.stats m)) t.members

let total_transitions t =
  List.fold_left (fun acc (m, _) -> acc + (Manager.stats m).Manager.transitions) 0 t.members

let crash_all t = List.iter (fun (m, _) -> Manager.crash m) t.members
let recover_all t = List.iter (fun (m, _) -> Manager.recover m) t.members
