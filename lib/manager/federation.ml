open Interaction

(* The alphabet-overlap decomposition lives in {!Interaction.Partition};
   the federation keeps its historical entry point. *)
let partition = Partition.partition

type t = {
  members : (Manager.t * Alpha.t) list;
}

let of_components components =
  { members = List.map (fun c -> (Manager.create c, Alpha.of_expr c)) components }

let create e = of_components (partition e)
let size t = List.length t.members
let managers t = List.map fst t.members

let relevant t c =
  List.filter_map (fun (m, al) -> if Alpha.mem al c then Some m else None) t.members

let permitted t c = List.for_all (fun m -> Manager.permitted m c) (relevant t c)

(* Message accounting for the two-phase round: an ask is a request plus a
   reply (2 messages); a confirm or abort is fire-and-forget (1). *)
let m_rounds = Telemetry.counter "federation_rounds_total"
let m_msgs = Telemetry.counter "federation_messages_total"

let execute t ~client c =
  let members = relevant t c in
  let run () =
    Telemetry.incr m_rounds;
    (* phase 1: collect grants from every relevant manager *)
    let rec grant acc = function
      | [] -> Ok (List.rev acc)
      | m :: rest -> (
        Telemetry.add m_msgs 2;
        match Manager.ask m ~client c with
        | Manager.Granted -> grant (m :: acc) rest
        | Manager.Denied | Manager.Busy -> Error acc)
    in
    match grant [] members with
    | Ok granted ->
      (* phase 2: commit everywhere *)
      List.iter
        (fun m ->
          Telemetry.add m_msgs 1;
          Manager.confirm m ~client c)
        granted;
      true
    | Error granted ->
      List.iter
        (fun m ->
          Telemetry.add m_msgs 1;
          Manager.abort m ~client c)
        granted;
      false
  in
  if not !Telemetry.on then run ()
  else
    Telemetry.span "federation.execute"
      ~fields:
        [ ("action", Telemetry.Str (Action.concrete_to_string c));
          ("managers", Telemetry.Int (List.length members)) ]
      ~exit:(fun ok -> [ ("ok", Telemetry.Bool ok) ])
      run

let loads t =
  List.map (fun (m, _) -> ((Manager.stats m).Manager.asks, Manager.stats m)) t.members

let total_transitions t =
  List.fold_left (fun acc (m, _) -> acc + (Manager.stats m).Manager.transitions) 0 t.members

let crash_all t = List.iter (fun (m, _) -> Manager.crash m) t.members
let recover_all t = List.iter (fun (m, _) -> Manager.recover m) t.members
