open Interaction

(** The durable interaction manager: {!Manager} + a write-ahead log.

    Every state-changing operation — the coordination protocol's
    ask/confirm/abort rounds, subscription changes, and each notification
    receive/ack — is applied in memory and then appended to a {!Store} WAL
    (redo logging: the append, fsync'd by default, is the commit point).
    Periodic full-image snapshots bound replay cost; {!open_} recovers by
    loading the snapshot and replaying the log, then requeues every
    in-flight notification (the process death was a receiver crash for
    every inbox), so post-recovery redelivery reports [deliveries >= 2].

    Operation records carry the trace id ambient when the operation ran;
    replay re-applies them under {!Telemetry.with_trace}, so regenerated
    notification envelopes keep their original provenance.  Envelope
    enqueues additionally leave per-envelope [sent] audit records.

    Exported probe: [recovery_replayed_records] (cumulative over opens);
    the store layer adds [wal_*] and [snapshot_*]. *)

type t

val open_ : ?fsync:bool -> ?snapshot_every:int -> dir:string -> Expr.t -> t
(** Open (or create) the durable manager stored in [dir] for expression
    [e].  An existing store is recovered: snapshot + WAL replay + requeue
    of in-flight notifications.  [fsync] (default [true]) makes every
    append durable before the operation returns; [snapshot_every] takes an
    automatic snapshot whenever that many WAL records accumulate (default:
    only explicit {!snapshot} calls).
    @raise Invalid_argument when the store belongs to a different
    expression or holds malformed records. *)

val manager : t -> Manager.t
(** The underlying in-memory manager.  Read freely; state-changing calls
    made directly on it bypass the log and will not survive a crash. *)

(** {1 Logged operations} — semantics as in {!Manager}. *)

val ask : t -> client:string -> Action.concrete -> Manager.reply
val confirm : t -> client:string -> Action.concrete -> unit
val abort : t -> client:string -> Action.concrete -> unit
val execute : t -> client:string -> Action.concrete -> bool
val timeout_outstanding : t -> unit
val subscribe : t -> client:string -> Action.concrete -> unit
val unsubscribe : t -> client:string -> Action.concrete -> unit

val receive_notification :
  t -> client:string -> Manager.notification Mqueue.envelope option
(** Receive (and log) the next notification from the client's inbox,
    keeping the envelope so provenance is visible. *)

val ack_notification : t -> client:string -> unit
(** @raise Invalid_argument when nothing is in flight. *)

val drain_notifications : t -> client:string -> Manager.notification list

val crash_client : t -> client:string -> unit
(** The client's receiver loses its volatile state: requeue its in-flight
    notifications ({!Mqueue.crash_receiver}), as a logged operation. *)

(** {1 Read-only pass-throughs} *)

val permitted : t -> Action.concrete -> bool
val is_stuck : t -> bool
val stats : t -> Manager.stats
val expr : t -> Expr.t
val confirmed_log : t -> Action.concrete list

(** {1 Store control} *)

val snapshot : t -> unit
(** Write the manager's full image atomically, then truncate the WAL. *)

val replayed : t -> int
(** WAL records replayed when this handle was opened. *)

val dir : t -> string
val close : t -> unit
