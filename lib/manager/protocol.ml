open Interaction

type strategy =
  | Polling
  | Subscribing
  | Optimistic

type result = {
  completed : bool;
  rounds : int;
  messages : int;
  asks : int;
  denials : int;
  busies : int;
  informs : int;
  subscribes : int;
  compensations : int;
}

type client = {
  cname : string;
  mutable script : Action.concrete list;
  mutable waiting : bool;  (* Subscribing: subscribed, awaiting a go signal *)
  mutable rest : int;  (* rounds left of think time after an execution *)
}

(* Message cost of one protocol step (Fig. 10 arrows). *)
let ask_cost = 2 (* ask + reply *)
let confirm_cost = 1
let subscribe_cost = 1
let unsubscribe_cost = 1
let report_cost = 1 (* optimistic: report without waiting for a reply *)
let compensate_cost = 1 (* optimistic: notify the manager of the undo *)

(* A protocol target: any backend that speaks the coordination and
   subscription protocols.  The simulation is backend-agnostic — the same
   client strategies drive an in-memory manager, a durable (WAL-backed)
   manager, or anything else that implements these six verbs. *)
type target = {
  t_ask : client:string -> Action.concrete -> Manager.reply;
  t_confirm : client:string -> Action.concrete -> unit;
  t_execute : client:string -> Action.concrete -> bool;
  t_subscribe : client:string -> Action.concrete -> unit;
  t_unsubscribe : client:string -> Action.concrete -> unit;
  t_drain : client:string -> Manager.notification list;
  t_stats : unit -> Manager.stats;
}

let manager_target mgr =
  { t_ask = (fun ~client c -> Manager.ask mgr ~client c);
    t_confirm = (fun ~client c -> Manager.confirm mgr ~client c);
    t_execute = (fun ~client c -> Manager.execute mgr ~client c);
    t_subscribe = (fun ~client c -> Manager.subscribe mgr ~client c);
    t_unsubscribe = (fun ~client c -> Manager.unsubscribe mgr ~client c);
    t_drain = (fun ~client -> Manager.drain_notifications mgr ~client);
    t_stats = (fun () -> Manager.stats mgr) }

let durable_target d =
  { t_ask = (fun ~client c -> Durable.ask d ~client c);
    t_confirm = (fun ~client c -> Durable.confirm d ~client c);
    t_execute = (fun ~client c -> Durable.execute d ~client c);
    t_subscribe = (fun ~client c -> Durable.subscribe d ~client c);
    t_unsubscribe = (fun ~client c -> Durable.unsubscribe d ~client c);
    t_drain = (fun ~client -> Durable.drain_notifications d ~client);
    t_stats = (fun () -> Durable.stats d) }

let simulate_on ?(max_rounds = 10_000) ?(think_rounds = 0) strategy target ~scripts =
  let clients =
    List.map (fun (cname, script) -> { cname; script; waiting = false; rest = 0 }) scripts
  in
  let messages = ref 0 in
  let compensations = ref 0 in
  let try_execute cl action =
    messages := !messages + ask_cost;
    match target.t_ask ~client:cl.cname action with
    | Manager.Granted ->
      (* step 3 (execute) is local; step 4 confirms *)
      messages := !messages + confirm_cost;
      target.t_confirm ~client:cl.cname action;
      cl.script <- List.tl cl.script;
      cl.rest <- think_rounds;
      true
    | Manager.Denied | Manager.Busy -> false
  in
  let poll_round cl =
    match cl.script with [] -> () | action :: _ -> ignore (try_execute cl action)
  in
  let optimistic_round cl =
    match cl.script with
    | [] -> ()
    | action :: _ ->
      (* execute locally, then report; the manager validates the report *)
      messages := !messages + report_cost;
      if target.t_execute ~client:cl.cname action then (
        cl.script <- List.tl cl.script;
        cl.rest <- think_rounds)
      else (
        (* the report is rejected: compensate the already-executed action *)
        incr compensations;
        messages := !messages + compensate_cost)
  in
  let subscribe_round cl =
    match cl.script with
    | [] -> ()
    | action :: _ ->
      if not cl.waiting then (
        messages := !messages + subscribe_cost;
        target.t_subscribe ~client:cl.cname action;
        cl.waiting <- true);
      (* Consume notifications; the subscription protocol delivers the
         initial status plus every change (each is one inform message,
         already counted by the manager; we mirror the count here). *)
      let notes = target.t_drain ~client:cl.cname in
      messages := !messages + List.length notes;
      let go =
        List.exists (fun (n : Manager.notification) -> n.Manager.now_permitted) notes
      in
      if go then
        if try_execute cl action then (
          messages := !messages + unsubscribe_cost;
          target.t_unsubscribe ~client:cl.cname action;
          cl.waiting <- false)
        else
          (* raced by another client: stay subscribed, wait for the next
             status change *)
          ()
  in
  let act =
    match strategy with
    | Polling -> poll_round
    | Subscribing -> subscribe_round
    | Optimistic -> optimistic_round
  in
  (* Each active client round is one externally submitted request: it gets
     its own trace id, so every ask/reply/confirm (and any denial blame)
     recorded during the round shares one causal chain. *)
  let step cl =
    if cl.rest > 0 then cl.rest <- cl.rest - 1
    else if !Telemetry.on then Telemetry.in_new_trace (fun () -> act cl)
    else act cl
  in
  let rounds = ref 0 in
  let unfinished () = List.exists (fun cl -> cl.script <> []) clients in
  while unfinished () && !rounds < max_rounds do
    incr rounds;
    List.iter step clients
  done;
  let st = target.t_stats () in
  { completed = not (unfinished ());
    rounds = !rounds;
    messages = !messages;
    asks = st.Manager.asks;
    denials = st.Manager.denials;
    busies = st.Manager.busies;
    informs = st.Manager.informs;
    subscribes = st.Manager.subscribes;
    compensations = !compensations
  }

let simulate ?max_rounds ?think_rounds strategy e ~scripts =
  simulate_on ?max_rounds ?think_rounds strategy
    (manager_target (Manager.create e))
    ~scripts

let pp_result ppf r =
  Format.fprintf ppf
    "completed=%b rounds=%d messages=%d asks=%d denials=%d busies=%d informs=%d \
     subscribes=%d compensations=%d"
    r.completed r.rounds r.messages r.asks r.denials r.busies r.informs r.subscribes
    r.compensations
