open Interaction

type strategy =
  | Polling
  | Subscribing
  | Optimistic

type result = {
  completed : bool;
  rounds : int;
  messages : int;
  asks : int;
  denials : int;
  busies : int;
  informs : int;
  subscribes : int;
  compensations : int;
}

type client = {
  cname : string;
  mutable script : Action.concrete list;
  mutable waiting : bool;  (* Subscribing: subscribed, awaiting a go signal *)
  mutable rest : int;  (* rounds left of think time after an execution *)
}

(* Message cost of one protocol step (Fig. 10 arrows). *)
let ask_cost = 2 (* ask + reply *)
let confirm_cost = 1
let subscribe_cost = 1
let unsubscribe_cost = 1
let report_cost = 1 (* optimistic: report without waiting for a reply *)
let compensate_cost = 1 (* optimistic: notify the manager of the undo *)

let simulate ?(max_rounds = 10_000) ?(think_rounds = 0) strategy e ~scripts =
  let mgr = Manager.create e in
  let clients =
    List.map (fun (cname, script) -> { cname; script; waiting = false; rest = 0 }) scripts
  in
  let messages = ref 0 in
  let compensations = ref 0 in
  let try_execute cl action =
    messages := !messages + ask_cost;
    match Manager.ask mgr ~client:cl.cname action with
    | Manager.Granted ->
      (* step 3 (execute) is local; step 4 confirms *)
      messages := !messages + confirm_cost;
      Manager.confirm mgr ~client:cl.cname action;
      cl.script <- List.tl cl.script;
      cl.rest <- think_rounds;
      true
    | Manager.Denied | Manager.Busy -> false
  in
  let poll_round cl =
    match cl.script with [] -> () | action :: _ -> ignore (try_execute cl action)
  in
  let optimistic_round cl =
    match cl.script with
    | [] -> ()
    | action :: _ ->
      (* execute locally, then report; the manager validates the report *)
      messages := !messages + report_cost;
      if Manager.execute mgr ~client:cl.cname action then (
        cl.script <- List.tl cl.script;
        cl.rest <- think_rounds)
      else (
        (* the report is rejected: compensate the already-executed action *)
        incr compensations;
        messages := !messages + compensate_cost)
  in
  let subscribe_round cl =
    match cl.script with
    | [] -> ()
    | action :: _ ->
      if not cl.waiting then (
        messages := !messages + subscribe_cost;
        Manager.subscribe mgr ~client:cl.cname action;
        cl.waiting <- true);
      (* Consume notifications; the subscription protocol delivers the
         initial status plus every change (each is one inform message,
         already counted by the manager; we mirror the count here). *)
      let notes = Manager.drain_notifications mgr ~client:cl.cname in
      messages := !messages + List.length notes;
      let go =
        List.exists (fun (n : Manager.notification) -> n.Manager.now_permitted) notes
      in
      if go then
        if try_execute cl action then (
          messages := !messages + unsubscribe_cost;
          Manager.unsubscribe mgr ~client:cl.cname action;
          cl.waiting <- false)
        else
          (* raced by another client: stay subscribed, wait for the next
             status change *)
          ()
  in
  let act =
    match strategy with
    | Polling -> poll_round
    | Subscribing -> subscribe_round
    | Optimistic -> optimistic_round
  in
  (* Each active client round is one externally submitted request: it gets
     its own trace id, so every ask/reply/confirm (and any denial blame)
     recorded during the round shares one causal chain. *)
  let step cl =
    if cl.rest > 0 then cl.rest <- cl.rest - 1
    else if !Telemetry.on then Telemetry.in_new_trace (fun () -> act cl)
    else act cl
  in
  let rounds = ref 0 in
  let unfinished () = List.exists (fun cl -> cl.script <> []) clients in
  while unfinished () && !rounds < max_rounds do
    incr rounds;
    List.iter step clients
  done;
  let st = Manager.stats mgr in
  { completed = not (unfinished ());
    rounds = !rounds;
    messages = !messages;
    asks = st.Manager.asks;
    denials = st.Manager.denials;
    busies = st.Manager.busies;
    informs = st.Manager.informs;
    subscribes = st.Manager.subscribes;
    compensations = !compensations
  }

let pp_result ppf r =
  Format.fprintf ppf
    "completed=%b rounds=%d messages=%d asks=%d denials=%d busies=%d informs=%d \
     subscribes=%d compensations=%d"
    r.completed r.rounds r.messages r.asks r.denials r.busies r.informs r.subscribes
    r.compensations
