open Interaction

type reply =
  | Granted
  | Denied
  | Busy

type stats = {
  asks : int;
  grants : int;
  denials : int;
  busies : int;
  confirms : int;
  aborts : int;
  transitions : int;
  foreign : int;
  informs : int;
  subscribes : int;
  unsubscribes : int;
  timeouts : int;
}

let zero_stats =
  { asks = 0; grants = 0; denials = 0; busies = 0; confirms = 0; aborts = 0;
    transitions = 0; foreign = 0; informs = 0; subscribes = 0; unsubscribes = 0;
    timeouts = 0 }

type notification = {
  action : Action.concrete;
  now_permitted : bool;
}

type subscription = {
  sclient : string;
  saction : Action.concrete;
  (* Status last delivered to the client.  A change notification is due
     exactly when the current status differs from this, so committing a
     transition needs one permissibility check per subscription — not a
     before/after pair recomputing what the previous notification round
     already established. *)
  mutable last_notified : bool;
}

(* Telemetry handles, mirroring the [stats] record in the shared metrics
   registry so live exposure (`imanager METRICS`, `iworkbench metrics`)
   agrees with [pp_stats].  Counter bumps self-gate on the telemetry flag. *)
let m_asks = Telemetry.counter "manager_asks_total"
let m_grants = Telemetry.counter "manager_grants_total"
let m_denials = Telemetry.counter "manager_denials_total"
let m_busies = Telemetry.counter "manager_busies_total"
let m_confirms = Telemetry.counter "manager_confirms_total"
let m_aborts = Telemetry.counter "manager_aborts_total"
let m_informs = Telemetry.counter "manager_informs_total"
let m_execute_ns = Telemetry.histogram "manager_execute_ns"

type t = {
  mexpr : Expr.t;
  alpha : Alpha.t;
  mutable state : State.t option;  (* None only between crash and recover *)
  mutable crashed : bool;
  mutable outstanding : (string * Action.concrete) option;
  mutable log : Action.concrete list;  (* confirmed, newest first; durable *)
  mutable subs : subscription list;  (* durable *)
  mutable inboxes : (string * notification Mqueue.t) list;
  mutable st : stats;
  per_action : (Action.concrete, int * int) Hashtbl.t;  (* grants, denials *)
  (* bounded tentative-successor cache: the coordination protocol's
     ask → confirm round trip computes the successor once at grant time
     and commits it at confirm time instead of transitioning twice.
     Direct-mapped over (state, action), so interleaved asks by other
     clients and the notify loop's permissibility sweeps no longer evict
     the pair being committed (BENCH_pr4 measured the former one-slot
     cache at a 0.3% hit rate under exactly that interleaving). *)
  tentative : Scache.t;
  (* compiled kernel, bound lazily on the first transition (see
     [Engine.session]: managers created under [--no-compile] pick it up if
     compilation is re-enabled) *)
  mutable mauto : Automaton.t option;
  (* complexity sentinel, bound lazily on the first observed commit *)
  mutable msentinel : Sentinel.t option;
}

let create e =
  { mexpr = e; alpha = Alpha.of_expr e; state = Some (State.init e); crashed = false;
    outstanding = None; log = []; subs = []; inboxes = []; st = zero_stats;
    per_action = Hashtbl.create 32; tentative = Scache.create (); mauto = None;
    msentinel = None }

let expr t = t.mexpr
let alive t = not t.crashed
let stats t = t.st
let state_size t = match t.state with Some s -> State.size s | None -> 0
let confirmed_log t = List.rev t.log

let in_alphabet t c = Alpha.mem t.alpha c

(* Tentative-cache effectiveness across all managers, exported as the
   [manager_tentative_cache_*] probes (the engine's successor cache has the
   matching [engine_successor_cache_*] pair). *)
let tent_hits = Atomic.make 0
let tent_misses = Atomic.make 0
let tentative_cache_stats () = (Atomic.get tent_hits, Atomic.get tent_misses)
let reset_tentative_cache_stats () =
  Atomic.set tent_hits 0;
  Atomic.set tent_misses 0

let () =
  Telemetry.register_probe "manager_tentative_cache_hits" (fun () ->
      float_of_int (Atomic.get tent_hits));
  Telemetry.register_probe "manager_tentative_cache_misses" (fun () ->
      float_of_int (Atomic.get tent_misses))

(* τ̂ as the manager performs it: the compiled kernel when active (checked
   per step inside [Automaton.step] — the kill switch applies to live
   managers), interpreted otherwise. *)
let mgr_trans t s c =
  match t.mauto with
  | Some a -> Automaton.step a s c
  | None ->
    if Automaton.active () then begin
      let a = Automaton.shared t.mexpr in
      t.mauto <- Some a;
      Automaton.step a s c
    end
    else State.trans s c

(* a fresh τ̂ evaluation: the kernel-evaluation link of the causal chain —
   one event per evaluation (cache hits re-use the recorded one) *)
let eval_trans t s c =
  if not !Telemetry.on then mgr_trans t s c
  else begin
    let t0 = Telemetry.now () in
    let succ = mgr_trans t s c in
    let dur = Int64.to_int (Int64.sub (Telemetry.now ()) t0) in
    Telemetry.event "engine.eval"
      ~fields:
        [ ("action", Telemetry.Str (Action.concrete_to_string c));
          ("ok", Telemetry.Bool (succ <> None));
          ("dur_ns", Telemetry.Int dur) ];
    succ
  end

let tentative_trans t s c =
  (* the manager's cache obeys the same kill switch as the engine's: the
     experiment harness measures both paths with one flag *)
  if not (Engine.successor_cache_enabled ()) then eval_trans t s c
  else
    match Scache.find t.tentative s c with
    | Some succ ->
      Atomic.incr tent_hits;
      succ
    | None ->
      Atomic.incr tent_misses;
      let succ = eval_trans t s c in
      Scache.add t.tentative s c succ;
      succ

let permitted t c =
  (not (in_alphabet t c))
  ||
  match t.state with
  | None -> false
  | Some s -> tentative_trans t s c <> None

let inbox t ~client =
  match List.assoc_opt client t.inboxes with
  | Some q -> q
  | None ->
    let q = Mqueue.create ~name:client in
    t.inboxes <- (client, q) :: t.inboxes;
    q

let drain_notifications t ~client = Mqueue.drain (inbox t ~client)

let notify t =
  (* Inform every subscriber whose subscribed action's status differs from
     what they were last told. *)
  List.iter
    (fun sub ->
      let is_now = permitted t sub.saction in
      if is_now <> sub.last_notified then (
        sub.last_notified <- is_now;
        Mqueue.send (inbox t ~client:sub.sclient)
          { action = sub.saction; now_permitted = is_now };
        Telemetry.incr m_informs;
        t.st <- { t.st with informs = t.st.informs + 1 }))
    t.subs

let mgr_sentinel t =
  match t.msentinel with
  | Some w -> w
  | None ->
    let w = Sentinel.create t.mexpr in
    t.msentinel <- Some w;
    w

let do_transition t c =
  (* The successor was computed at grant time and sits in the tentative
     cache; commit it, then check each subscription's status against its
     recorded last notification.  One tentative transition per subscribed
     action — the before-state statuses need no recomputation, the
     bookkeeping already holds them.  No cache invalidation on commit:
     entries are keyed by the pre-commit state and stay sound. *)
  let succ = match t.state with Some s -> tentative_trans t s c | None -> None in
  (match t.state with
  | Some _ ->
    (match succ with
    | Some s' ->
      t.state <- Some s';
      t.st <- { t.st with transitions = t.st.transitions + 1 };
      if !Telemetry.on then Sentinel.sample (mgr_sentinel t) ~size:(State.size s')
    | None ->
      (* A confirmed action must have been granted, hence valid; reaching
         this point indicates a protocol violation by the caller. *)
      invalid_arg "Manager: confirmed action is not permitted by the current state")
  | None -> invalid_arg "Manager: crashed (call recover first)");
  notify t

let bump_action t c granted =
  let g, d = Option.value ~default:(0, 0) (Hashtbl.find_opt t.per_action c) in
  Hashtbl.replace t.per_action c (if granted then (g + 1, d) else (g, d + 1))

let ask_unobserved t ~client c =
  t.st <- { t.st with asks = t.st.asks + 1 };
  if t.crashed then Denied
  else if not (in_alphabet t c) then (
    t.st <- { t.st with foreign = t.st.foreign + 1; grants = t.st.grants + 1 };
    Granted)
  else
    match t.outstanding with
    | Some _ ->
      t.st <- { t.st with busies = t.st.busies + 1 };
      Busy
    | None ->
      if permitted t c then (
        t.outstanding <- Some (client, c);
        t.st <- { t.st with grants = t.st.grants + 1 };
        bump_action t c true;
        Granted)
      else (
        t.st <- { t.st with denials = t.st.denials + 1 };
        bump_action t c false;
        Denied)

let reply_name = function Granted -> "granted" | Denied -> "denied" | Busy -> "busy"

let ask t ~client c =
  if not !Telemetry.on then ask_unobserved t ~client c
  else
    Telemetry.span "manager.ask"
      ~fields:
        [ ("client", Telemetry.Str client);
          ("action", Telemetry.Str (Action.concrete_to_string c)) ]
      ~exit:(fun r -> [ ("reply", Telemetry.Str (reply_name r)) ])
      (fun () ->
        let r = ask_unobserved t ~client c in
        Telemetry.incr m_asks;
        Telemetry.incr
          (match r with Granted -> m_grants | Denied -> m_denials | Busy -> m_busies);
        (* denial provenance: attach the minimal blame set to the reply's
           event stream (crash denials and busy replies carry none) *)
        (match r with
        | Denied when not t.crashed -> (
          match t.state with
          | Some s -> (
            match Explain.explain s c with
            | Some x ->
              Telemetry.event "manager.denied"
                ~fields:
                  (("client", Telemetry.Str client)
                  :: ("action", Telemetry.Str (Action.concrete_to_string c))
                  :: ("reason", Telemetry.Str (Explain.summary x))
                  :: Explain.fields x)
            | None -> ())
          | None -> ())
        | _ -> ());
        r)

let matching_grant t ~client c =
  match t.outstanding with
  | Some (cl, a) when String.equal cl client && Action.equal_concrete a c -> true
  | Some _ | None -> false

let confirm_unobserved t ~client c =
  t.st <- { t.st with confirms = t.st.confirms + 1 };
  if not (in_alphabet t c) then () (* foreign actions carry no state *)
  else if matching_grant t ~client c then (
    t.outstanding <- None;
    t.log <- c :: t.log;
    do_transition t c)
  else invalid_arg "Manager.confirm: no matching outstanding grant"

let confirm t ~client c =
  if not !Telemetry.on then confirm_unobserved t ~client c
  else
    Telemetry.span "manager.confirm"
      ~fields:
        [ ("client", Telemetry.Str client);
          ("action", Telemetry.Str (Action.concrete_to_string c)) ]
      (fun () ->
        confirm_unobserved t ~client c;
        Telemetry.incr m_confirms;
        (* the trace's replayable log: confirmed = committed (a protocol
           violation raised out of confirm_unobserved never reaches here) *)
        Telemetry.event "manager.committed"
          ~fields:
            [ ("action", Telemetry.Str (Action.concrete_to_string c));
              ("commit", Telemetry.Bool true) ])

let abort t ~client c =
  t.st <- { t.st with aborts = t.st.aborts + 1 };
  Telemetry.incr m_aborts;
  if !Telemetry.on then
    Telemetry.event "manager.abort"
      ~fields:
        [ ("client", Telemetry.Str client);
          ("action", Telemetry.Str (Action.concrete_to_string c)) ];
  if matching_grant t ~client c then t.outstanding <- None

let execute_unobserved t ~client c =
  match ask t ~client c with
  | Granted ->
    confirm t ~client c;
    true
  | Denied | Busy -> false

let execute t ~client c =
  if not !Telemetry.on then execute_unobserved t ~client c
  else
    Telemetry.span "manager.execute"
      ~fields:
        [ ("client", Telemetry.Str client);
          ("action", Telemetry.Str (Action.concrete_to_string c)) ]
      ~exit:(fun ok -> [ ("ok", Telemetry.Bool ok) ])
      (fun () -> Telemetry.time m_execute_ns (fun () -> execute_unobserved t ~client c))

let is_stuck t = t.outstanding <> None

let timeout_outstanding t =
  if t.outstanding <> None then (
    t.outstanding <- None;
    t.st <- { t.st with timeouts = t.st.timeouts + 1 })

let subscribe t ~client c =
  t.st <- { t.st with subscribes = t.st.subscribes + 1 };
  let status = permitted t c in
  (match
     List.find_opt
       (fun sub -> String.equal sub.sclient client && Action.equal_concrete sub.saction c)
       t.subs
   with
  | Some sub -> sub.last_notified <- status
  | None ->
    t.subs <- { sclient = client; saction = c; last_notified = status } :: t.subs);
  (* initial status notification *)
  Mqueue.send (inbox t ~client) { action = c; now_permitted = status };
  Telemetry.incr m_informs;
  t.st <- { t.st with informs = t.st.informs + 1 }

let unsubscribe t ~client c =
  t.st <- { t.st with unsubscribes = t.st.unsubscribes + 1 };
  t.subs <-
    List.filter
      (fun sub ->
        not (String.equal sub.sclient client && Action.equal_concrete sub.saction c))
      t.subs

let crash t =
  t.state <- None;
  t.crashed <- true;
  t.outstanding <- None;
  Scache.clear t.tentative

let recover t =
  if t.crashed then (
    let replayed =
      List.fold_left
        (fun s c -> match s with None -> None | Some s -> mgr_trans t s c)
        (Some (State.init t.mexpr))
        (List.rev t.log)
    in
    (match replayed with
    | Some _ -> t.state <- replayed
    | None -> invalid_arg "Manager.recover: durable log replay failed");
    t.crashed <- false)

let checkpoint t =
  match t.state with
  | None -> invalid_arg "Manager.checkpoint: crashed (recover first)"
  | Some st ->
    Sexp.to_string
      (Sexp.List
         [ Sexp.Atom "checkpoint";
           Sexp.List [ Sexp.Atom "confirmed"; Sexp.Atom (string_of_int (List.length t.log)) ];
           Sexp.List [ Sexp.Atom "expr"; Expr.to_sexp t.mexpr ];
           Sexp.List [ Sexp.Atom "state"; State.to_sexp st ]
         ])

let recover_with t ~checkpoint =
  match Sexp.of_string checkpoint with
  | Error m -> invalid_arg ("Manager.recover_with: " ^ m)
  | Ok
      (Sexp.List
        [ Sexp.Atom "checkpoint";
          Sexp.List [ Sexp.Atom "confirmed"; pos ];
          Sexp.List [ Sexp.Atom "expr"; expr ];
          Sexp.List [ Sexp.Atom "state"; state ]
        ]) ->
    let pos = Sexp.int_field pos in
    if not (Expr.equal (Expr.of_sexp expr) t.mexpr) then
      invalid_arg "Manager.recover_with: checkpoint belongs to a different expression";
    let total = List.length t.log in
    if pos > total then
      invalid_arg "Manager.recover_with: checkpoint is ahead of the durable log";
    (* log is newest-first: the suffix after the checkpoint is the first
       (total - pos) entries, to be replayed oldest-first *)
    let suffix =
      List.filteri (fun i _ -> i < total - pos) t.log |> List.rev
    in
    let replayed =
      List.fold_left
        (fun s c -> match s with None -> None | Some s -> mgr_trans t s c)
        (Some (State.of_sexp state))
        suffix
    in
    (match replayed with
    | Some _ ->
      t.state <- replayed;
      t.crashed <- false;
      t.outstanding <- None
    | None -> invalid_arg "Manager.recover_with: log-suffix replay failed")
  | Ok _ -> invalid_arg "Manager.recover_with: malformed checkpoint"

(* ------------------------------------------------------------------ *)
(* Full images: the durable layer snapshots the whole manager — state,
   protocol position, subscriptions and notification queues — not just
   the state+log pair of [checkpoint]. *)

let notification_to_sexp n =
  Sexp.List
    [ Sexp.Atom "notif"; Action.concrete_to_sexp n.action;
      Sexp.of_bool n.now_permitted ]

let notification_of_sexp = function
  | Sexp.List [ Sexp.Atom "notif"; a; b ] ->
    { action = Action.concrete_of_sexp a; now_permitted = Sexp.bool_field b }
  | _ -> invalid_arg "Manager: malformed notification"

let stats_to_sexp s =
  Sexp.List
    (Sexp.Atom "stats"
    :: List.map Sexp.of_int
         [ s.asks; s.grants; s.denials; s.busies; s.confirms; s.aborts;
           s.transitions; s.foreign; s.informs; s.subscribes; s.unsubscribes;
           s.timeouts ])

let stats_of_sexp = function
  | Sexp.List (Sexp.Atom "stats" :: fields) -> (
    match List.map Sexp.int_field fields with
    | [ asks; grants; denials; busies; confirms; aborts; transitions; foreign;
        informs; subscribes; unsubscribes; timeouts ] ->
      { asks; grants; denials; busies; confirms; aborts; transitions; foreign;
        informs; subscribes; unsubscribes; timeouts }
    | _ -> invalid_arg "Manager: malformed stats")
  | _ -> invalid_arg "Manager: malformed stats"

let image t =
  let state_sexp =
    match t.state with
    | Some s -> Sexp.List [ Sexp.Atom "s"; State.to_sexp s ]
    | None -> Sexp.Atom "null"
  in
  let outstanding =
    match t.outstanding with
    | Some (client, c) -> [ Sexp.Atom client; Action.concrete_to_sexp c ]
    | None -> []
  in
  Sexp.List
    [ Sexp.Atom "manager-image";
      Sexp.List [ Sexp.Atom "expr"; Expr.to_sexp t.mexpr ];
      Sexp.List [ Sexp.Atom "state"; state_sexp ];
      Sexp.List [ Sexp.Atom "crashed"; Sexp.of_bool t.crashed ];
      Sexp.List (Sexp.Atom "outstanding" :: outstanding);
      Sexp.List (Sexp.Atom "log" :: List.rev_map Action.concrete_to_sexp t.log);
      Sexp.List
        (Sexp.Atom "subs"
        :: List.rev_map
             (fun sub ->
               Sexp.List
                 [ Sexp.Atom "sub"; Sexp.Atom sub.sclient;
                   Action.concrete_to_sexp sub.saction;
                   Sexp.of_bool sub.last_notified ])
             t.subs);
      Sexp.List
        (Sexp.Atom "inboxes"
        :: List.rev_map
             (fun (_, q) -> Mqueue.to_sexp notification_to_sexp q)
             t.inboxes);
      stats_to_sexp t.st;
      Sexp.List
        (Sexp.Atom "per-action"
        :: Hashtbl.fold
             (fun a (g, d) acc ->
               Sexp.List
                 [ Sexp.Atom "pa"; Action.concrete_to_sexp a; Sexp.of_int g;
                   Sexp.of_int d ]
               :: acc)
             t.per_action [])
    ]

let of_image s =
  match s with
  | Sexp.List (Sexp.Atom "manager-image" :: _) ->
    let one name =
      match Sexp.field name s with
      | Some [ v ] -> v
      | Some _ | None -> invalid_arg ("Manager.of_image: missing field " ^ name)
    in
    let many name =
      match Sexp.field name s with
      | Some vs -> vs
      | None -> invalid_arg ("Manager.of_image: missing field " ^ name)
    in
    let mexpr = Expr.of_sexp (one "expr") in
    let state =
      match one "state" with
      | Sexp.Atom "null" -> None
      | Sexp.List [ Sexp.Atom "s"; st ] -> Some (State.of_sexp st)
      | _ -> invalid_arg "Manager.of_image: malformed state"
    in
    let outstanding =
      match Sexp.field "outstanding" s with
      | Some [] | None -> None
      | Some [ Sexp.Atom client; a ] -> Some (client, Action.concrete_of_sexp a)
      | Some _ -> invalid_arg "Manager.of_image: malformed outstanding"
    in
    let subs =
      List.rev_map
        (function
          | Sexp.List [ Sexp.Atom "sub"; Sexp.Atom client; a; ln ] ->
            { sclient = client; saction = Action.concrete_of_sexp a;
              last_notified = Sexp.bool_field ln }
          | _ -> invalid_arg "Manager.of_image: malformed subscription")
        (many "subs")
    in
    let inboxes =
      List.rev_map
        (fun qs ->
          let q = Mqueue.of_sexp notification_of_sexp qs in
          (Mqueue.name q, q))
        (many "inboxes")
    in
    let per_action = Hashtbl.create 32 in
    List.iter
      (function
        | Sexp.List [ Sexp.Atom "pa"; a; g; d ] ->
          Hashtbl.replace per_action (Action.concrete_of_sexp a)
            (Sexp.int_field g, Sexp.int_field d)
        | _ -> invalid_arg "Manager.of_image: malformed per-action entry")
      (many "per-action");
    { mexpr; alpha = Alpha.of_expr mexpr; state;
      crashed = Sexp.bool_field (one "crashed"); outstanding;
      log = List.rev_map Action.concrete_of_sexp (many "log");
      subs; inboxes; st = stats_of_sexp (Sexp.List (Sexp.Atom "stats" :: many "stats"));
      per_action; tentative = Scache.create (); mauto = None; msentinel = None }
  | _ -> invalid_arg "Manager.of_image: malformed image"

let subscriptions t =
  List.rev_map (fun sub -> (sub.sclient, sub.saction, sub.last_notified)) t.subs

let outstanding t = t.outstanding
let inbox_clients t = List.rev_map fst t.inboxes

let current_state t = t.state

let explain_denial t c =
  match t.state with Some s -> Explain.explain s c | None -> None

let sentinel_warnings t =
  match t.msentinel with Some w -> Sentinel.warnings w | None -> 0

let action_report t =
  Hashtbl.fold (fun a (g, d) acc -> (a, g, d) :: acc) t.per_action []
  |> List.sort (fun (_, g1, d1) (_, g2, d2) -> Stdlib.compare (g2 + d2, g2) (g1 + d1, g1))

let pp_stats ppf s =
  Format.fprintf ppf
    "asks=%d grants=%d denials=%d busies=%d confirms=%d aborts=%d transitions=%d \
     foreign=%d informs=%d subscribes=%d unsubscribes=%d timeouts=%d"
    s.asks s.grants s.denials s.busies s.confirms s.aborts s.transitions s.foreign
    s.informs s.subscribes s.unsubscribes s.timeouts
