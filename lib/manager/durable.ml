open Interaction
module Store = Interaction_store.Store

(* The durable interaction manager: a Manager.t whose every state-changing
   operation is written to a Store WAL, with periodic full-image snapshots
   and replay-on-open recovery.

   Redo-log discipline: the operation is applied in memory first and its
   record appended after — the append (+ fsync) is the commit point.  A
   crash between apply and append loses that operation, which is exactly a
   crash "just before" it; a crash after the append is recovered by
   replay.

   Record formats (one sexp per WAL record):

     (r TID (OP ...))    an operation, applied under ambient trace TID so
                         replay regenerates notification envelopes with
                         their original trace ids
     (sent CLIENT ENV)   audit record of an envelope enqueued by the
                         preceding operation; skipped at replay (the
                         replayed operation regenerates the send)

   Operations:

     (ask C A) (confirm C A) (abort C A) (execute C A) (timeout)
     (subscribe C A) (unsubscribe C A)
     (recv C) (ackn C) (drain C) (crashrecv C)
     (requeue)           crash-recovery requeue of every inbox, logged by
                         [open_] itself: the process died, so every
                         receiver died with its in-flight notifications
                         unacknowledged — at-least-once delivery requeues
                         them, and post-recovery redelivery is observable
                         as deliveries ≥ 2

   The snapshot is the manager's full image (Manager.image): restoring it
   and replaying the records appended since is observationally equivalent
   to never having crashed. *)

let g_replayed = ref 0

let () =
  Telemetry.register_probe "recovery_replayed_records" (fun () ->
      float_of_int !g_replayed)

type t = {
  mgr : Manager.t;
  store : Store.t;
  snapshot_every : int option;
  mutable replayed : int;  (* records replayed by [open_] *)
}

let manager t = t.mgr
let dir t = Store.dir t.store
let replayed t = t.replayed

(* ---- record construction ---------------------------------------- *)

let act = Action.concrete_to_sexp

let op_record op =
  Sexp.to_string
    (Sexp.List [ Sexp.Atom "r"; Sexp.of_int (Telemetry.current_trace ()); op ])

let op2 tag client a = Sexp.List [ Sexp.Atom tag; Sexp.Atom client; act a ]
let op1 tag client = Sexp.List [ Sexp.Atom tag; Sexp.Atom client ]
let op0 tag = Sexp.List [ Sexp.Atom tag ]

(* ---- sent-envelope audit trail ----------------------------------- *)

let sent_counts mgr =
  List.map
    (fun client -> (client, Mqueue.sent_count (Manager.inbox mgr ~client)))
    (Manager.inbox_clients mgr)

let last_n n xs =
  let len = List.length xs in
  List.filteri (fun i _ -> i >= len - n) xs

(* After an operation, append one audit record per envelope it enqueued:
   the send already committed with the op's record (replay regenerates
   it), but the trail makes every enqueue individually visible in the
   log. *)
let log_sends t before =
  List.iter
    (fun client ->
      let q = Manager.inbox t.mgr ~client in
      let fresh =
        Mqueue.sent_count q
        - (match List.assoc_opt client before with Some n -> n | None -> 0)
      in
      if fresh > 0 then
        List.iter
          (fun env ->
            Store.append t.store
              (Sexp.to_string
                 (Sexp.List
                    [ Sexp.Atom "sent"; Sexp.Atom client;
                      Mqueue.envelope_to_sexp Manager.notification_to_sexp env
                    ])))
          (last_n fresh (Mqueue.pending_envelopes q)))
    (Manager.inbox_clients t.mgr)

let maybe_snapshot t =
  match t.snapshot_every with
  | Some n when n > 0 && Store.records_since_snapshot t.store >= n ->
    Store.snapshot t.store (Sexp.to_string (Manager.image t.mgr))
  | _ -> ()

(* Apply-then-log wrapper for operations that may also enqueue
   notifications. *)
let logged t op f =
  let before = sent_counts t.mgr in
  let result = f () in
  Store.append t.store (op_record op);
  log_sends t before;
  maybe_snapshot t;
  result

(* ---- the logged operations --------------------------------------- *)

let ask t ~client c = logged t (op2 "ask" client c) (fun () -> Manager.ask t.mgr ~client c)

let confirm t ~client c =
  logged t (op2 "confirm" client c) (fun () -> Manager.confirm t.mgr ~client c)

let abort t ~client c =
  logged t (op2 "abort" client c) (fun () -> Manager.abort t.mgr ~client c)

let execute t ~client c =
  logged t (op2 "execute" client c) (fun () -> Manager.execute t.mgr ~client c)

let timeout_outstanding t =
  logged t (op0 "timeout") (fun () -> Manager.timeout_outstanding t.mgr)

let subscribe t ~client c =
  logged t (op2 "subscribe" client c) (fun () -> Manager.subscribe t.mgr ~client c)

let unsubscribe t ~client c =
  logged t (op2 "unsubscribe" client c) (fun () -> Manager.unsubscribe t.mgr ~client c)

let receive_notification t ~client =
  (* logged even when the queue is empty: the receive still creates the
     client's inbox on first use, which is observable state — and replay
     is deterministic, so a replayed empty receive stays empty *)
  let env = Mqueue.receive_envelope (Manager.inbox t.mgr ~client) in
  Store.append t.store (op_record (op1 "recv" client));
  maybe_snapshot t;
  env

let ack_notification t ~client =
  Mqueue.ack (Manager.inbox t.mgr ~client);
  Store.append t.store (op_record (op1 "ackn" client));
  maybe_snapshot t

let drain_notifications t ~client =
  (* unconditional for the same reason as [receive_notification] *)
  let ms = Manager.drain_notifications t.mgr ~client in
  Store.append t.store (op_record (op1 "drain" client));
  maybe_snapshot t;
  ms

let crash_client t ~client =
  logged t (op1 "crashrecv" client) (fun () ->
      Mqueue.crash_receiver (Manager.inbox t.mgr ~client))

(* Read-only pass-throughs. *)
let permitted t c = Manager.permitted t.mgr c
let is_stuck t = Manager.is_stuck t.mgr
let stats t = Manager.stats t.mgr
let expr t = Manager.expr t.mgr
let confirmed_log t = Manager.confirmed_log t.mgr

let snapshot t = Store.snapshot t.store (Sexp.to_string (Manager.image t.mgr))
let close t = Store.close t.store

(* ---- recovery ----------------------------------------------------- *)

let requeue_all mgr =
  List.iter
    (fun client -> Mqueue.crash_receiver (Manager.inbox mgr ~client))
    (Manager.inbox_clients mgr)

let apply_op mgr op =
  match op with
  | Sexp.List [ Sexp.Atom "ask"; Sexp.Atom client; a ] ->
    ignore (Manager.ask mgr ~client (Action.concrete_of_sexp a))
  | Sexp.List [ Sexp.Atom "confirm"; Sexp.Atom client; a ] ->
    Manager.confirm mgr ~client (Action.concrete_of_sexp a)
  | Sexp.List [ Sexp.Atom "abort"; Sexp.Atom client; a ] ->
    Manager.abort mgr ~client (Action.concrete_of_sexp a)
  | Sexp.List [ Sexp.Atom "execute"; Sexp.Atom client; a ] ->
    ignore (Manager.execute mgr ~client (Action.concrete_of_sexp a))
  | Sexp.List [ Sexp.Atom "timeout" ] -> Manager.timeout_outstanding mgr
  | Sexp.List [ Sexp.Atom "subscribe"; Sexp.Atom client; a ] ->
    Manager.subscribe mgr ~client (Action.concrete_of_sexp a)
  | Sexp.List [ Sexp.Atom "unsubscribe"; Sexp.Atom client; a ] ->
    Manager.unsubscribe mgr ~client (Action.concrete_of_sexp a)
  | Sexp.List [ Sexp.Atom "recv"; Sexp.Atom client ] ->
    ignore (Mqueue.receive_envelope (Manager.inbox mgr ~client))
  | Sexp.List [ Sexp.Atom "ackn"; Sexp.Atom client ] ->
    Mqueue.ack (Manager.inbox mgr ~client)
  | Sexp.List [ Sexp.Atom "drain"; Sexp.Atom client ] ->
    ignore (Manager.drain_notifications mgr ~client)
  | Sexp.List [ Sexp.Atom "crashrecv"; Sexp.Atom client ] ->
    Mqueue.crash_receiver (Manager.inbox mgr ~client)
  | Sexp.List [ Sexp.Atom "requeue" ] -> requeue_all mgr
  | _ -> invalid_arg "Durable: unknown operation record"

let replay_record mgr record =
  match Sexp.of_string_exn record with
  | Sexp.List [ Sexp.Atom "r"; tid; op ] ->
    (* the original ambient trace: regenerated envelopes carry the same
       provenance the lost ones did *)
    Telemetry.with_trace (Sexp.int_field tid) (fun () -> apply_op mgr op)
  | Sexp.List (Sexp.Atom "sent" :: _) -> ()  (* audit only *)
  | _ -> invalid_arg "Durable: unknown record"

let open_ ?fsync ?snapshot_every ~dir e =
  let store, snapshot, records = Store.open_ ?fsync dir in
  let mgr =
    match snapshot with
    | None -> Manager.create e
    | Some image ->
      let m = Manager.of_image (Sexp.of_string_exn image) in
      if not (Expr.equal (Manager.expr m) e) then
        invalid_arg "Durable.open_: store belongs to a different expression";
      m
  in
  List.iter (replay_record mgr) records;
  let n = List.length records in
  g_replayed := !g_replayed + n;
  let t = { mgr; store; snapshot_every; replayed = n } in
  if !Telemetry.on then
    Telemetry.event "durable.recovered"
      ~fields:
        [ ("dir", Telemetry.Str dir);
          ("replayed", Telemetry.Int n);
          ("snapshot", Telemetry.Bool (snapshot <> None)) ];
  (* The process restart is a receiver crash for every inbox: requeue
     in-flight notifications (at-least-once), as a *logged* operation so
     the next replay reproduces it in sequence. *)
  if List.exists (fun c -> Mqueue.in_flight (Manager.inbox mgr ~client:c) > 0)
       (Manager.inbox_clients mgr)
  then logged t (op0 "requeue") (fun () -> requeue_all mgr);
  t
