open Interaction

(** Client-side coordination strategies (Section 7, Fig. 10).

    Clients each hold a script of actions to execute in order against a
    shared interaction manager.  Two strategies are simulated:

    - {e Polling} ("busy waiting", which the subscription protocol exists to
      avoid): in every round each unfinished client asks for its next
      action; a denial costs the ask/reply round-trip and the client retries
      in the next round.
    - {e Subscribing}: the client subscribes to its next action, waits
      passively for an informational message saying the action became
      permissible, only then asks, and unsubscribes after execution.
    - {e Optimistic}: the client executes first and reports afterwards (one
      message, no reply round-trip); when the report turns out to violate
      the constraint the client must {e compensate} (undo) the action and
      retry later.  Cheapest under low contention, pathological under high
      contention — one of the paper's "alternative coordination protocols,
      possessing different complexity and particular advantages and
      disadvantages".

    Message accounting (per the protocol arrows of Fig. 10): ask = 1,
    reply = 1, confirm = 1, subscribe = 1, inform = 1, unsubscribe = 1.
    Action execution itself is local and free. *)

type strategy =
  | Polling
  | Subscribing
  | Optimistic

type result = {
  completed : bool;  (** all scripts ran to completion *)
  rounds : int;
  messages : int;  (** total protocol messages exchanged *)
  asks : int;
  denials : int;
  busies : int;
  informs : int;
  subscribes : int;
  compensations : int;  (** optimistic executions that had to be undone *)
}

type target
(** A protocol backend: anything speaking the coordination and
    subscription protocols.  The same client strategies can drive an
    in-memory {!Manager} or a WAL-backed {!Durable} manager. *)

val manager_target : Manager.t -> target
val durable_target : Durable.t -> target

val simulate_on :
  ?max_rounds:int ->
  ?think_rounds:int ->
  strategy ->
  target ->
  scripts:(string * Action.concrete list) list ->
  result
(** Like {!simulate}, against an explicit backend (which may hold prior
    state — e.g. a durable manager recovered mid-workflow resumes where
    the crashed run left off). *)

val simulate :
  ?max_rounds:int ->
  ?think_rounds:int ->
  strategy ->
  Expr.t ->
  scripts:(string * Action.concrete list) list ->
  result
(** Run all client scripts to completion (or until [max_rounds], default
    10_000).  Clients are served round-robin within a round.

    [think_rounds] (default 0) models activity duration: after executing an
    action a client rests that many rounds before attempting its next one.
    During such periods a polling client keeps asking every round ("busy
    waiting causing unnecessary communication and interaction manager
    workload"), while a subscribed client stays silent — this is precisely
    the asymmetry the subscription protocol was designed for. *)

val pp_result : Format.formatter -> result -> unit
