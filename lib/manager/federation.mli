open Interaction

(** Multiple interaction managers (Section 7).

    The paper notes that its coordination protocols are "generalized to
    application scenarios involving multiple interaction managers" to keep
    a single manager from becoming a bottleneck.  This module implements
    that generalization for the natural decomposition: a top-level coupling
    of constraint subgraphs whose concrete alphabets do not overlap imposes
    no cross-constraints between the groups (by the projection
    characterization of synchronization, the coupling of alphabet-disjoint
    expressions is their independent product), so each connected group can
    be served by its own manager.

    A client executes an action through the federation; the federation
    routes it to every member manager whose alphabet mentions the action
    and runs a two-phase grant: ask all relevant managers, and only if all
    grant, confirm at all of them (otherwise abort the grants already
    obtained).  Actions foreign to every member are permitted without
    traffic. *)

val partition : Expr.t -> Expr.t list
(** Split a (possibly nested) top-level coupling into connected components
    by alphabet overlap.  Expressions that are not couplings, or whose
    operands all interfere, yield a single component.  The coupling of the
    returned components is equivalent to the input. *)

type t

val create : Expr.t -> t
(** Partition the expression and spawn one {!Manager} per component. *)

val of_components : Expr.t list -> t
(** Use an explicit decomposition (unchecked). *)

val size : t -> int
(** Number of member managers. *)

val managers : t -> Manager.t list

val relevant : t -> Action.concrete -> Manager.t list
(** The member managers whose alphabet mentions the action. *)

val permitted : t -> Action.concrete -> bool
(** Permitted by every relevant member. *)

val execute : t -> client:string -> Action.concrete -> bool
(** Two-phase ask/confirm across the relevant members; aborts cleanly when
    any member denies. *)

val loads : t -> (int * Manager.stats) list
(** Per-member (asks handled, full stats) — the bottleneck-relief measure. *)

val total_transitions : t -> int

val crash_all : t -> unit
val recover_all : t -> unit
