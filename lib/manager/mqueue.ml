(* Both the pending and the in-flight FIFOs are two-list (front/back)
   queues: [front] holds the oldest messages in order, [back] the newest in
   reverse.  Enqueue conses onto [back]; dequeue pops [front], reversing
   [back] into it when it runs dry.  Each element is reversed at most once,
   so a burst of n sends drains in O(n) — the previous [list @ [m]]
   representation made the same burst O(n²). *)

type 'a fifo = {
  mutable front : 'a list;  (* oldest first *)
  mutable back : 'a list;  (* newest first *)
  mutable size : int;
}

let fifo_empty () = { front = []; back = []; size = 0 }

let fifo_push q m =
  q.back <- m :: q.back;
  q.size <- q.size + 1

let fifo_pop q =
  (match q.front with
  | [] ->
    q.front <- List.rev q.back;
    q.back <- []
  | _ :: _ -> ());
  match q.front with
  | [] -> None
  | m :: rest ->
    q.front <- rest;
    q.size <- q.size - 1;
    Some m

let fifo_to_list q = q.front @ List.rev q.back

(* Replace the queue's contents by [ms] followed by the current contents. *)
let fifo_requeue_front q ms =
  q.front <- ms @ fifo_to_list q;
  q.back <- [];
  q.size <- List.length ms + q.size

(* Every message travels in an envelope carrying its provenance: the
   ambient trace id at send time (0 when no trace was active) and a
   delivery count bumped on every delivery — including redeliveries after
   a receiver crash, so at-least-once duplicates are distinguishable. *)
type 'a envelope = {
  payload : 'a;
  etrace : int;
  mutable deliveries : int;
}

let payload e = e.payload
let trace e = e.etrace
let deliveries e = e.deliveries

type 'a t = {
  qname : string;
  pending : 'a envelope fifo;  (* undelivered *)
  flight : 'a envelope fifo;  (* delivered, not acknowledged *)
  mutable sent : int;
  mutable redelivered : int;
  mutable hwm : int;  (* max pending depth ever observed *)
  mutable delivery_hwm : int;  (* max deliveries of any single envelope *)
}

(* Always-on aggregates across every queue in the process, sampled by the
   telemetry registry as probes. *)
let g_sends = ref 0
let g_receives = ref 0
let g_acks = ref 0
let g_redeliveries = ref 0
let g_depth_hwm = ref 0
let g_delivery_hwm = ref 0

let () =
  let probe name r = Telemetry.register_probe name (fun () -> float_of_int !r) in
  probe "mqueue_sends_total" g_sends;
  probe "mqueue_receives_total" g_receives;
  probe "mqueue_acks_total" g_acks;
  probe "mqueue_redeliveries_total" g_redeliveries;
  probe "mqueue_depth_hwm" g_depth_hwm;
  probe "mqueue_delivery_hwm" g_delivery_hwm

let create ~name =
  { qname = name; pending = fifo_empty (); flight = fifo_empty (); sent = 0;
    redelivered = 0; hwm = 0; delivery_hwm = 0 }

let name q = q.qname

let send q m =
  let env = { payload = m; etrace = Telemetry.current_trace (); deliveries = 0 } in
  fifo_push q.pending env;
  q.sent <- q.sent + 1;
  incr g_sends;
  if q.pending.size > q.hwm then q.hwm <- q.pending.size;
  if q.pending.size > !g_depth_hwm then g_depth_hwm := q.pending.size;
  if !Telemetry.on then
    Telemetry.event "mqueue.enqueue"
      ~fields:
        [ ("queue", Telemetry.Str q.qname);
          ("depth", Telemetry.Int q.pending.size);
          ("origin_trace", Telemetry.Int env.etrace) ]

let receive_envelope q =
  match fifo_pop q.pending with
  | None -> None
  | Some env ->
    env.deliveries <- env.deliveries + 1;
    if env.deliveries > q.delivery_hwm then q.delivery_hwm <- env.deliveries;
    if env.deliveries > !g_delivery_hwm then g_delivery_hwm := env.deliveries;
    (* a redelivery is counted when it happens — the second (or later)
       delivery of one envelope.  Counting at crash time over-reported:
       requeued envelopes that were never re-received still scored, and
       crash–receive–crash sequences tallied the same envelope twice. *)
    if env.deliveries >= 2 then begin
      q.redelivered <- q.redelivered + 1;
      incr g_redeliveries
    end;
    fifo_push q.flight env;
    incr g_receives;
    if !Telemetry.on then
      Telemetry.event "mqueue.dequeue"
        ~fields:
          [ ("queue", Telemetry.Str q.qname);
            ("depth", Telemetry.Int q.pending.size);
            ("in_flight", Telemetry.Int q.flight.size);
            ("origin_trace", Telemetry.Int env.etrace);
            ("deliveries", Telemetry.Int env.deliveries) ];
    Some env

let receive q = Option.map payload (receive_envelope q)

let ack q =
  match fifo_pop q.flight with
  | None -> invalid_arg "Mqueue.ack: no message in flight"
  | Some _ -> incr g_acks

let crash_receiver q =
  (* no redelivery counting here: the crash only *requeues*; the
     redelivery is tallied by [receive_envelope] when the envelope is
     actually handed out again (deliveries ≥ 2) *)
  if !Telemetry.on && q.flight.size > 0 then
    Telemetry.event "mqueue.redeliver"
      ~fields:
        [ ("queue", Telemetry.Str q.qname); ("count", Telemetry.Int q.flight.size) ];
  (* redelivery order: in-flight messages (oldest first) before pending;
     the envelopes keep their delivery counts, so the next receive reports
     deliveries ≥ 2 — the at-least-once duplicate is visible *)
  fifo_requeue_front q.pending (fifo_to_list q.flight);
  if q.pending.size > q.hwm then q.hwm <- q.pending.size;
  if q.pending.size > !g_depth_hwm then g_depth_hwm := q.pending.size;
  q.flight.front <- [];
  q.flight.back <- [];
  q.flight.size <- 0

let length q = q.pending.size
let depth = length
let high_watermark q = q.hwm
let delivery_watermark q = q.delivery_hwm
let in_flight q = q.flight.size
let sent_count q = q.sent
let redelivered_count q = q.redelivered

let drain q =
  let rec go acc =
    match receive q with
    | None -> List.rev acc
    | Some m ->
      ack q;
      go (m :: acc)
  in
  go []

let pending_envelopes q = fifo_to_list q.pending
let flight_envelopes q = fifo_to_list q.flight

(* Persistence: the WAL snapshots queue images, and provenance must survive
   a restart — an envelope that was delivered once before the crash must
   still report deliveries ≥ 2 when redelivered after recovery. *)

module Sexp = Interaction.Sexp

let envelope_to_sexp payload_to_sexp e =
  Sexp.List
    [ Sexp.Atom "env";
      Sexp.List [ Sexp.Atom "payload"; payload_to_sexp e.payload ];
      Sexp.List [ Sexp.Atom "trace"; Sexp.of_int e.etrace ];
      Sexp.List [ Sexp.Atom "deliveries"; Sexp.of_int e.deliveries ] ]

let envelope_of_sexp payload_of_sexp s =
  match s with
  | Sexp.List (Sexp.Atom "env" :: _) ->
    let one name =
      match Sexp.field name s with
      | Some [ v ] -> v
      | Some _ | None ->
        invalid_arg ("Mqueue.envelope_of_sexp: missing field " ^ name)
    in
    { payload = payload_of_sexp (one "payload");
      etrace = Sexp.int_field (one "trace");
      deliveries = Sexp.int_field (one "deliveries") }
  | _ -> invalid_arg "Mqueue.envelope_of_sexp: malformed envelope"

let to_sexp payload_to_sexp q =
  let envs es = List.map (envelope_to_sexp payload_to_sexp) es in
  Sexp.List
    [ Sexp.Atom "mqueue";
      Sexp.List [ Sexp.Atom "name"; Sexp.Atom q.qname ];
      Sexp.List (Sexp.Atom "pending" :: envs (fifo_to_list q.pending));
      Sexp.List (Sexp.Atom "flight" :: envs (fifo_to_list q.flight));
      Sexp.List [ Sexp.Atom "sent"; Sexp.of_int q.sent ];
      Sexp.List [ Sexp.Atom "redelivered"; Sexp.of_int q.redelivered ];
      Sexp.List [ Sexp.Atom "hwm"; Sexp.of_int q.hwm ];
      Sexp.List [ Sexp.Atom "delivery_hwm"; Sexp.of_int q.delivery_hwm ] ]

let of_sexp payload_of_sexp s =
  match s with
  | Sexp.List (Sexp.Atom "mqueue" :: _) ->
    let one name =
      match Sexp.field name s with
      | Some [ v ] -> v
      | Some _ | None -> invalid_arg ("Mqueue.of_sexp: missing field " ^ name)
    in
    let envs name =
      match Sexp.field name s with
      | Some vs -> List.map (envelope_of_sexp payload_of_sexp) vs
      | None -> invalid_arg ("Mqueue.of_sexp: missing field " ^ name)
    in
    let fifo_of_list ms =
      { front = ms; back = []; size = List.length ms }
    in
    { qname = Sexp.string_field (one "name");
      pending = fifo_of_list (envs "pending");
      flight = fifo_of_list (envs "flight");
      sent = Sexp.int_field (one "sent");
      redelivered = Sexp.int_field (one "redelivered");
      hwm = Sexp.int_field (one "hwm");
      delivery_hwm = Sexp.int_field (one "delivery_hwm") }
  | _ -> invalid_arg "Mqueue.of_sexp: malformed queue image"
