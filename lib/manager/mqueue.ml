type 'a t = {
  qname : string;
  mutable pending : 'a list;  (* undelivered, oldest first *)
  mutable flight : 'a list;  (* delivered, not acknowledged, oldest first *)
  mutable sent : int;
  mutable redelivered : int;
}

let create ~name = { qname = name; pending = []; flight = []; sent = 0; redelivered = 0 }
let name q = q.qname

let send q m =
  q.pending <- q.pending @ [ m ];
  q.sent <- q.sent + 1

let receive q =
  match q.pending with
  | [] -> None
  | m :: rest ->
    q.pending <- rest;
    q.flight <- q.flight @ [ m ];
    Some m

let ack q =
  match q.flight with
  | [] -> invalid_arg "Mqueue.ack: no message in flight"
  | _ :: rest -> q.flight <- rest

let crash_receiver q =
  q.redelivered <- q.redelivered + List.length q.flight;
  q.pending <- q.flight @ q.pending;
  q.flight <- []

let length q = List.length q.pending
let in_flight q = List.length q.flight
let sent_count q = q.sent
let redelivered_count q = q.redelivered

let drain q =
  let rec go acc =
    match receive q with
    | None -> List.rev acc
    | Some m ->
      ack q;
      go (m :: acc)
  in
  go []
