open Interaction

(** Classic process-synchronization conditions as interaction expressions.

    Interaction expressions descend from formalisms for synchronizing
    parallel programs — path expressions, synchronization expressions, flow
    expressions (Section 1, Fig. 2).  This module expresses the canonical
    textbook conditions in the unified formalism; each generator documents
    the condition and the tests verify its classic properties (mutual
    exclusion, capacity bounds, phase ordering, deadlock behaviour).

    Action-name conventions are fixed per pattern and documented; all
    patterns are closed expressions ready for an interaction manager. *)

val semaphore : ?acquire:string -> ?release:string -> int -> Expr.t
(** Counting semaphore of capacity [n] (default action names ["acquire"]
    and ["release"], no arguments): at most [n] unmatched acquires at any
    time; [times n (iter (acquire − release))]. *)

val critical_section : ?enter:string -> ?leave:string -> unit -> Expr.t
(** Binary mutual exclusion: [semaphore 1] with ["enter"]/["leave"]. *)

val readers_writers : unit -> Expr.t
(** Readers–writers: arbitrarily many concurrent readers {e or} exactly one
    writer, repeatedly.  Actions: [read_s(r)]/[read_t(r)] for reader [r],
    [write_s(w)]/[write_t(w)] for writer [w] — the "flash" of a reader
    phase and an exclusive writer. *)

val producers_consumers : capacity:int -> Expr.t
(** Bounded buffer (bag semantics): every item [i] is produced before it is
    consumed, each item at most once, and at most [capacity] items are
    outstanding.  Actions: [produce(i)], [consume(i)]. *)

val barrier : parties:int -> Expr.t
(** Cyclic barrier: in every round all parties arrive (in any order) before
    any departs.  Actions: [arrive(k)], [leave(k)] for k = 1..parties. *)

val alternation : string -> string -> Expr.t
(** Strict alternation of two parameterless actions, first one first. *)

(** {1 Dining philosophers}

    The constraint side (forks are mutually exclusive) composed with the
    behaviour side (each philosopher's protocol) in one expression, so the
    classic deadlock shows up as a {e dead end} (Section 3) detectable by
    {!Interaction.Language.has_dead_end}. *)

val fork_constraint : int -> Expr.t
(** Fork [k] is a mutex: [iter (some p: take(p,k) − put(p,k))]. *)

val philosopher : n:int -> lefty:bool -> int -> Expr.t
(** The protocol of philosopher [i] among [n]: repeatedly take the two
    adjacent forks (lower-numbered… the usual order: left fork [i] then
    right fork [(i+1) mod n]; a {e lefty} takes them in the opposite
    order), eat, put both back.  Actions: [take(i,k)], [eat(i)],
    [put(i,k)]. *)

val philosophers : ?lefty_first:bool -> int -> Expr.t
(** The whole table: the parallel composition of all protocols coupled with
    every fork constraint.  With [lefty_first] (default false) philosopher
    0 is left-handed — the classic deadlock-breaking asymmetry.  The
    symmetric table has a reachable dead end (everyone holds one fork); the
    asymmetric one does not. *)

(** {1 Further classics} *)

val token_ring : stations:int -> Expr.t
(** A token circulates between stations 1..n in order, repeatedly; station
    k may only act while holding the token.  Actions: [recv(k)], [work(k)]
    (optional), [send(k)]. *)

val resource_pool : resources:string list -> Expr.t
(** Every named resource is an independent mutex; a client [c] holds
    resource [r] between [grab(c,r)] and [drop(c,r)].  The coupling of one
    mutex per resource — partitionable across managers
    ({!Interaction_manager.Federation}). *)

val pipeline : stages:int -> capacity:int -> Expr.t
(** Items flow through stages 1..n in order; each stage processes one item
    at a time and at most [capacity] items are inside the pipeline.
    Actions: [enter(i)], [stage(i,k)], [exit(i)] for item [i], stage [k]. *)

val writers_priority : unit -> Expr.t
(** Readers–writers with writer batches: like {!readers_writers} but a
    writer phase admits a whole (nonempty) sequence of writers before
    readers resume — the classic starvation-avoidance variant.  Same action
    names as {!readers_writers}. *)
