open Interaction

let semaphore ?(acquire = "acquire") ?(release = "release") n =
  if n <= 0 then invalid_arg "Patterns.semaphore: capacity must be positive";
  Expr.times n (Expr.seq_iter (Expr.seq (Expr.act acquire []) (Expr.act release [])))

let critical_section ?(enter = "enter") ?(leave = "leave") () =
  semaphore ~acquire:enter ~release:leave 1

let readers_writers () =
  let p name = Expr.activity name [ Action.param "r" ] in
  let reader_phase = Expr.par_iter (Expr.some_q "r" (p "read")) in
  let writer = Expr.some_q "w" (Expr.activity "write" [ Action.param "w" ]) in
  Expr.mutex [ reader_phase; writer ]

let producers_consumers ~capacity =
  if capacity <= 0 then invalid_arg "Patterns.producers_consumers: capacity must be positive";
  let slot =
    Expr.seq_iter
      (Expr.some_q "i"
         (Expr.seq
            (Expr.atom "produce" [ Action.param "i" ])
            (Expr.atom "consume" [ Action.param "i" ])))
  in
  Expr.times capacity slot

let barrier ~parties =
  if parties <= 0 then invalid_arg "Patterns.barrier: parties must be positive";
  let phase name =
    Expr.par_list
      (List.init parties (fun k -> Expr.act name [ string_of_int (k + 1) ]))
  in
  Expr.seq_iter (Expr.seq (phase "arrive") (phase "leave"))

let alternation first second =
  Expr.seq_iter (Expr.seq (Expr.act first []) (Expr.act second []))

(* --- dining philosophers ------------------------------------------------ *)

let fork_constraint k =
  Expr.seq_iter
    (Expr.some_q "p"
       (Expr.seq
          (Expr.atom "take" [ Action.param "p"; Action.value (string_of_int k) ])
          (Expr.atom "put" [ Action.param "p"; Action.value (string_of_int k) ])))

let philosopher ~n ~lefty i =
  if n < 2 then invalid_arg "Patterns.philosopher: need at least two philosophers";
  let me = string_of_int i in
  let left = string_of_int i and right = string_of_int ((i + 1) mod n) in
  let first, second = if lefty then (right, left) else (left, right) in
  let take fork = Expr.act "take" [ me; fork ] in
  let put fork = Expr.act "put" [ me; fork ] in
  Expr.seq_iter
    (Expr.seq_list
       [ take first; take second; Expr.act "eat" [ me ]; put first; put second ])

let philosophers ?(lefty_first = false) n =
  if n < 2 then invalid_arg "Patterns.philosophers: need at least two philosophers";
  let protocols =
    Expr.par_list
      (List.init n (fun i -> philosopher ~n ~lefty:(lefty_first && i = 0) i))
  in
  let forks = List.init n fork_constraint in
  Expr.sync_list (protocols :: forks)

let token_ring ~stations =
  if stations < 2 then invalid_arg "Patterns.token_ring: need at least two stations";
  let station k =
    let v = string_of_int k in
    Expr.seq_list
      [ Expr.act "recv" [ v ];
        Expr.opt (Expr.act "work" [ v ]);
        Expr.act "send" [ v ]
      ]
  in
  Expr.seq_iter (Expr.seq_list (List.init stations (fun k -> station (k + 1))))

let resource_pool ~resources =
  if resources = [] then invalid_arg "Patterns.resource_pool: no resources";
  let one r =
    Expr.seq_iter
      (Expr.some_q "c"
         (Expr.seq
            (Expr.atom "grab" [ Action.param "c"; Action.value r ])
            (Expr.atom "drop" [ Action.param "c"; Action.value r ])))
  in
  Expr.sync_list (List.map one resources)

let pipeline ~stages ~capacity =
  if stages <= 0 || capacity <= 0 then
    invalid_arg "Patterns.pipeline: stages and capacity must be positive";
  (* per item: enter, then the stages in order, then exit *)
  let journey =
    Expr.some_q "i"
      (Expr.seq_list
         ([ Expr.atom "enter" [ Action.param "i" ] ]
         @ List.init stages (fun k ->
               Expr.atom "stage" [ Action.param "i"; Action.value (string_of_int (k + 1)) ])
         @ [ Expr.atom "exit" [ Action.param "i" ] ]))
  in
  let occupancy = Expr.times capacity (Expr.seq_iter journey) in
  (* each stage is a mutex: one item at a time *)
  let stage_mutex k =
    Expr.seq_iter
      (Expr.some_q "i"
         (Expr.atom "stage" [ Action.param "i"; Action.value (string_of_int k) ]))
  in
  Expr.sync_list (occupancy :: List.init stages (fun k -> stage_mutex (k + 1)))

let writers_priority () =
  let reader_phase =
    Expr.par_iter (Expr.some_q "r" (Expr.activity "read" [ Action.param "r" ]))
  in
  let writer = Expr.some_q "w" (Expr.activity "write" [ Action.param "w" ]) in
  (* a writer batch: one or more writers back to back *)
  let writer_batch = Expr.seq writer (Expr.seq_iter writer) in
  Expr.mutex [ reader_phase; writer_batch ]
