open Interaction

(* Each construct is emitted as a small sub-diagram with one entry and one
   exit node; composite constructs wire their children's entries and exits
   together, mirroring how a walker traverses the printed graphs of the
   paper. *)

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

type ctx = {
  buf : Buffer.t;
  mutable next : int;
}

let fresh ctx =
  let id = ctx.next in
  ctx.next <- id + 1;
  Printf.sprintf "n%d" id

let node ctx ~shape ?(extra = "") label =
  let id = fresh ctx in
  Buffer.add_string ctx.buf
    (Printf.sprintf "  %s [shape=%s,label=\"%s\"%s];\n" id shape (esc label) extra);
  id

let edge ?(attrs = "") ctx a b =
  Buffer.add_string ctx.buf (Printf.sprintf "  %s -> %s%s;\n" a b attrs)

let circle ctx label = node ctx ~shape:"circle" ~extra:",fixedsize=true,width=0.35" label
let dcircle ctx label = node ctx ~shape:"doublecircle" ~extra:",fixedsize=true,width=0.3" label

let action_label name args =
  Action.to_string (Action.make name args)

(* Returns (entry, exit). *)
let rec emit ctx (g : Graph.t) : string * string =
  match g with
  | Graph.Activity (name, args) ->
    let id = node ctx ~shape:"box" (action_label name args) in
    (id, id)
  | Graph.Act (name, args) ->
    let id = node ctx ~shape:"ellipse" (action_label name args) in
    (id, id)
  | Graph.Path gs ->
    let ends = List.map (emit ctx) gs in
    let rec wire = function
      | (_, x1) :: ((e2, _) :: _ as rest) ->
        edge ctx x1 e2;
        wire rest
      | [ _ ] | [] -> ()
    in
    wire ends;
    (match (ends, List.rev ends) with
    | (e, _) :: _, (_, x) :: _ -> (e, x)
    | _ -> invalid_arg "Dot.render: empty path")
  | Graph.EitherOr gs -> branch ctx circle "" gs
  | Graph.AsWellAs gs -> branch ctx dcircle "" gs
  | Graph.ArbitrarilyParallel g -> region ctx dcircle "✳" g
  | Graph.Loop g ->
    let o = circle ctx "" and c = circle ctx "" in
    let e, x = emit ctx g in
    edge ctx o e;
    edge ctx x c;
    edge ~attrs:" [style=dashed,constraint=false]" ctx c o;
    (o, c)
  | Graph.Optional g ->
    let o = circle ctx "" and c = circle ctx "" in
    let e, x = emit ctx g in
    edge ctx o e;
    edge ctx x c;
    edge ~attrs:" [style=dashed]" ctx o c;
    (o, c)
  | Graph.Multiplier (n, g) -> region ctx dcircle (string_of_int n) g
  | Graph.ForSome (p, g) -> region ctx circle p g
  | Graph.ForAll (p, g) -> region ctx dcircle p g
  | Graph.ForEach (p, g) -> region ctx dcircle ("≫" ^ p) g
  | Graph.ForEvery (p, g) -> region ctx dcircle ("∧" ^ p) g
  | Graph.Couple gs -> branch ctx dcircle "⊕" gs
  | Graph.Conjoin gs -> branch ctx dcircle "∧" gs
  | Graph.Use (name, gs) -> branch ctx (fun ctx l -> node ctx ~shape:"ellipse" l) name gs

and branch ctx mk label gs =
  let o = mk ctx label and c = mk ctx label in
  List.iter
    (fun g ->
      let e, x = emit ctx g in
      edge ctx o e;
      edge ctx x c)
    gs;
  (o, c)

and region ctx mk label g = branch ctx mk label [ g ]

let render ?(name = "interaction") g =
  let ctx = { buf = Buffer.create 1024; next = 0 } in
  Buffer.add_string ctx.buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n" (esc name));
  Buffer.add_string ctx.buf "  node [fontname=\"Helvetica\",fontsize=10];\n";
  let entry, exit_ = emit ctx g in
  let start = node ctx ~shape:"point" "" in
  let stop = node ctx ~shape:"point" "" in
  edge ctx start entry;
  edge ctx exit_ stop;
  Buffer.add_string ctx.buf "}\n";
  Buffer.contents ctx.buf

let save ?name ~file g =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?name g))

(* Indented box-drawing tree view. *)
let render_tree g =
  let buf = Buffer.create 256 in
  let label = function
    | Graph.Activity (name, args) ->
      Printf.sprintf "[%s]" (Action.to_string (Action.make name args))
    | Graph.Act (name, args) -> Action.to_string (Action.make name args)
    | Graph.Path _ -> "path"
    | Graph.EitherOr _ -> "either-or (1 of n)"
    | Graph.AsWellAs _ -> "as-well-as (all)"
    | Graph.ArbitrarilyParallel _ -> "arbitrarily-parallel"
    | Graph.Loop _ -> "loop"
    | Graph.Optional _ -> "optional"
    | Graph.Multiplier (n, _) -> Printf.sprintf "multiplier x%d" n
    | Graph.ForSome (p, _) -> Printf.sprintf "for some %s" p
    | Graph.ForAll (p, _) -> Printf.sprintf "for all %s" p
    | Graph.ForEach (p, _) -> Printf.sprintf "for each %s (sync)" p
    | Graph.ForEvery (p, _) -> Printf.sprintf "for every %s (conj)" p
    | Graph.Couple _ -> "coupling"
    | Graph.Conjoin _ -> "conjunction"
    | Graph.Use (name, _) -> name ^ "!"
  in
  let children = function
    | Graph.Activity _ | Graph.Act _ -> []
    | Graph.Path gs | Graph.EitherOr gs | Graph.AsWellAs gs | Graph.Couple gs
    | Graph.Conjoin gs | Graph.Use (_, gs) ->
      gs
    | Graph.ArbitrarilyParallel g | Graph.Loop g | Graph.Optional g
    | Graph.Multiplier (_, g) | Graph.ForSome (_, g) | Graph.ForAll (_, g)
    | Graph.ForEach (_, g) | Graph.ForEvery (_, g) ->
      [ g ]
  in
  let rec go prefix is_last g =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (if is_last then "└─ " else "├─ ");
    Buffer.add_string buf (label g);
    Buffer.add_char buf '\n';
    let kids = children g in
    let child_prefix = prefix ^ (if is_last then "   " else "│  ") in
    List.iteri (fun i k -> go child_prefix (i = List.length kids - 1) k) kids
  in
  go "" true g;
  Buffer.contents buf
