open Interaction

(** Interaction graphs — the graphical, user-oriented view (Section 2).

    An interaction graph is a left-to-right diagram traversed by walkers:
    rectangles are {e activities} (positive duration, expanded into start and
    termination actions), branchings are operator regions (single circle =
    "either or", double circle = "as well as", triple circle = "arbitrarily
    parallel"), and quantifier/multiplier regions generalize them.  Graphs
    are merely a graphical notation for interaction expressions, so this
    module represents a graph as a structure tree that {!compile}s to an
    {!Interaction.Expr.t}; {!Dot} renders it for Graphviz. *)

type t =
  | Activity of string * Action.arg list
      (** rectangle: expands to the [a_s − a_t] sequence (footnote 6) *)
  | Act of string * Action.arg list  (** a point action (no duration) *)
  | Path of t list  (** left-to-right traversal (sequential composition) *)
  | EitherOr of t list  (** single circle: disjunction branching (Fig. 4) *)
  | AsWellAs of t list  (** double circle: parallel branching (Fig. 4) *)
  | ArbitrarilyParallel of t  (** triple circle: parallel iteration *)
  | Loop of t  (** backwards edge: sequential iteration *)
  | Optional of t  (** bypass edge: option *)
  | Multiplier of int * t  (** Fig. 6: n concurrent instances of the body *)
  | ForSome of Action.param * t  (** "for some x" quantifier region *)
  | ForAll of Action.param * t  (** "for all p" quantifier region *)
  | ForEach of Action.param * t
      (** synchronization quantifier: every value constrained, with alphabet
          relief (Fig. 6's per-department capacity) *)
  | ForEvery of Action.param * t  (** conjunction quantifier *)
  | Couple of t list  (** coupling region of Fig. 7 (synchronization) *)
  | Conjoin of t list  (** strict conjunction region *)
  | Use of string * t list  (** application of a user-defined operator *)

val of_expr : Expr.t -> t
(** The canonical graph of an expression (expressions and graphs are two
    notations for the same thing).  Atoms become action nodes — activity
    rectangles are a presentation device and are not reconstructed. *)

val compile : ?templates:Template.registry -> t -> Expr.t
(** Translate the graph to its interaction expression.  [Use] nodes are
    expanded through the template registry (defaults to
    {!Template.predefined}, which knows the "flash" mutual exclusion of
    Fig. 5).  @raise Invalid_argument on unknown operator names, arity
    mismatches, or empty branchings. *)

val activity : string -> string list -> t
(** Activity with concrete value arguments. *)

val activity_p : string -> Action.arg list -> t

val size : t -> int
(** Number of graph nodes. *)

val pp : Format.formatter -> t -> unit
