open Interaction

(** User-defined operators for interaction graphs (Section 2, Fig. 5).

    Frequently occurring or complicated application-specific operators can
    be predefined by an "interaction graph expert" and then applied by
    unexperienced users without knowing their definition.  A template maps a
    list of operand expressions to its expansion. *)

type def = {
  name : string;
  arity : arity;
  expand : Expr.t list -> Expr.t;
  doc : string;
}

and arity =
  | Exactly of int
  | At_least of int

type registry

val empty : registry

val add : def -> registry -> registry
(** Later additions shadow earlier definitions of the same name. *)

val find : string -> registry -> def option
val names : registry -> string list

val predefined : registry
(** The built-in operators:
    - ["flash"] / ["mutex"] — Fig. 5's mutual exclusion: a sequential
      iteration of the disjunction of the branches;
    - ["handshake"] — strict alternation of two branches;
    - ["critical"] — at most one traversal of the body at a time, where the
      body itself may be optional. *)

val expand : registry -> string -> Expr.t list -> Expr.t
(** @raise Invalid_argument on unknown names or arity mismatch. *)
