open Interaction

type def = {
  name : string;
  arity : arity;
  expand : Expr.t list -> Expr.t;
  doc : string;
}

and arity =
  | Exactly of int
  | At_least of int

type registry = def list

let empty = []
let add d r = d :: r
let find name r = List.find_opt (fun d -> String.equal d.name name) r
let names r = List.sort_uniq String.compare (List.map (fun d -> d.name) r)

let arity_ok arity n =
  match arity with Exactly k -> n = k | At_least k -> n >= k

let expand r name operands =
  match find name r with
  | None -> invalid_arg (Printf.sprintf "Template.expand: unknown operator %S" name)
  | Some d ->
    let n = List.length operands in
    if not (arity_ok d.arity n) then
      invalid_arg
        (Printf.sprintf "Template.expand: operator %S does not accept %d operand(s)" name n)
    else d.expand operands

let flash =
  { name = "flash";
    arity = At_least 1;
    expand = Expr.mutex;
    doc =
      "Fig. 5 mutual exclusion: a sequential iteration of an either-or \
       branching of the operands."
  }

let handshake =
  { name = "handshake";
    arity = Exactly 2;
    expand =
      (fun ops ->
        match ops with
        | [ y; z ] -> Expr.seq_iter (Expr.seq y z)
        | _ -> assert false);
    doc = "Strict alternation: (y - z) repeated."
  }

let critical =
  { name = "critical";
    arity = Exactly 1;
    expand =
      (fun ops ->
        match ops with [ y ] -> Expr.seq_iter y | _ -> assert false);
    doc = "At most one traversal of the body at any time, repeatedly."
  }

let predefined =
  empty |> add critical |> add handshake |> add flash |> add { flash with name = "mutex" }
