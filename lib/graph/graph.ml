open Interaction

type t =
  | Activity of string * Action.arg list
  | Act of string * Action.arg list
  | Path of t list
  | EitherOr of t list
  | AsWellAs of t list
  | ArbitrarilyParallel of t
  | Loop of t
  | Optional of t
  | Multiplier of int * t
  | ForSome of Action.param * t
  | ForAll of Action.param * t
  | ForEach of Action.param * t
  | ForEvery of Action.param * t
  | Couple of t list
  | Conjoin of t list
  | Use of string * t list

let nonempty what = function
  | [] -> invalid_arg ("Graph.compile: empty " ^ what)
  | xs -> xs

let rec compile ?(templates = Template.predefined) g =
  let go g = compile ~templates g in
  match g with
  | Activity (name, args) -> Expr.activity name args
  | Act (name, args) -> Expr.Atom (Action.make name args)
  | Path gs -> Expr.seq_list (List.map go (nonempty "path" gs))
  | EitherOr gs -> Expr.alt_list (List.map go (nonempty "either-or branching" gs))
  | AsWellAs gs -> Expr.par_list (List.map go (nonempty "as-well-as branching" gs))
  | ArbitrarilyParallel g -> Expr.par_iter (go g)
  | Loop g -> Expr.seq_iter (go g)
  | Optional g -> Expr.opt (go g)
  | Multiplier (n, g) -> Expr.times n (go g)
  | ForSome (p, g) -> Expr.some_q p (go g)
  | ForAll (p, g) -> Expr.all_q p (go g)
  | ForEach (p, g) -> Expr.sync_q p (go g)
  | ForEvery (p, g) -> Expr.and_q p (go g)
  | Couple gs -> Expr.sync_list (List.map go (nonempty "coupling" gs))
  | Conjoin gs -> Expr.conj_list (List.map go (nonempty "conjunction" gs))
  | Use (name, gs) -> Template.expand templates name (List.map go gs)

let rec of_expr : Expr.t -> t = function
  | Expr.Atom a -> Act (a.Action.name, a.Action.args)
  | Expr.Opt y -> Optional (of_expr y)
  | Expr.Seq (y, z) -> Path [ of_expr y; of_expr z ]
  | Expr.SeqIter y -> Loop (of_expr y)
  | Expr.Par (y, z) -> AsWellAs [ of_expr y; of_expr z ]
  | Expr.ParIter y -> ArbitrarilyParallel (of_expr y)
  | Expr.Or (y, z) -> EitherOr [ of_expr y; of_expr z ]
  | Expr.And (y, z) -> Conjoin [ of_expr y; of_expr z ]
  | Expr.Sync (y, z) -> Couple [ of_expr y; of_expr z ]
  | Expr.SomeQ (p, y) -> ForSome (p, of_expr y)
  | Expr.AllQ (p, y) -> ForAll (p, of_expr y)
  | Expr.SyncQ (p, y) -> ForEach (p, of_expr y)
  | Expr.AndQ (p, y) -> ForEvery (p, of_expr y)

let activity name args = Activity (name, List.map Action.value args)
let activity_p name args = Activity (name, args)

let rec size = function
  | Activity _ | Act _ -> 1
  | Path gs | EitherOr gs | AsWellAs gs | Couple gs | Conjoin gs | Use (_, gs) ->
    1 + List.fold_left (fun n g -> n + size g) 0 gs
  | ArbitrarilyParallel g | Loop g | Optional g | Multiplier (_, g)
  | ForSome (_, g) | ForAll (_, g) | ForEach (_, g) | ForEvery (_, g) ->
    1 + size g

let rec pp ppf g =
  let plist ppf gs =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp ppf gs
  in
  match g with
  | Activity (name, args) -> Format.fprintf ppf "[%a]" Action.pp (Action.make name args)
  | Act (name, args) -> Action.pp ppf (Action.make name args)
  | Path gs -> Format.fprintf ppf "@[<hv 2>path(%a)@]" plist gs
  | EitherOr gs -> Format.fprintf ppf "@[<hv 2>either(%a)@]" plist gs
  | AsWellAs gs -> Format.fprintf ppf "@[<hv 2>aswellas(%a)@]" plist gs
  | ArbitrarilyParallel g -> Format.fprintf ppf "@[<hv 2>arbpar(%a)@]" pp g
  | Loop g -> Format.fprintf ppf "@[<hv 2>loop(%a)@]" pp g
  | Optional g -> Format.fprintf ppf "@[<hv 2>optional(%a)@]" pp g
  | Multiplier (n, g) -> Format.fprintf ppf "@[<hv 2>multiplier(%d, %a)@]" n pp g
  | ForSome (p, g) -> Format.fprintf ppf "@[<hv 2>forsome %s(%a)@]" p pp g
  | ForAll (p, g) -> Format.fprintf ppf "@[<hv 2>forall %s(%a)@]" p pp g
  | ForEach (p, g) -> Format.fprintf ppf "@[<hv 2>foreach %s(%a)@]" p pp g
  | ForEvery (p, g) -> Format.fprintf ppf "@[<hv 2>forevery %s(%a)@]" p pp g
  | Couple gs -> Format.fprintf ppf "@[<hv 2>couple(%a)@]" plist gs
  | Conjoin gs -> Format.fprintf ppf "@[<hv 2>conjoin(%a)@]" plist gs
  | Use (name, gs) -> Format.fprintf ppf "@[<hv 2>%s!(%a)@]" name plist gs
