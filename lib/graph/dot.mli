(** Graphviz rendering of interaction graphs.

    Renders the left-to-right diagram convention of the paper: activities as
    rectangles, actions as plain ellipses, operator regions as paired circle
    nodes (single circle = one branch, double circle = all branches, triple
    circle = arbitrarily many traversals), quantifiers and multipliers as
    labelled circles, and loops/options as back/skip edges.  The output is a
    [digraph] with [rankdir=LR] suitable for [dot -Tsvg]. *)

val render : ?name:string -> Graph.t -> string
(** DOT source for the graph. *)

val save : ?name:string -> file:string -> Graph.t -> unit
(** Write {!render} output to [file]. *)

val render_tree : Graph.t -> string
(** Box-drawing tree rendering of the graph structure for terminals (the
    poor man's interaction-graph editor view). *)
