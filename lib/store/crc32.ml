(* CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.  The WAL
   frames every record with a checksum so a torn write — a record whose
   tail never reached the disk — is detected and cleanly discarded at
   recovery instead of being replayed as garbage. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s pos len =
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let string s = update 0l s 0 (String.length s)
