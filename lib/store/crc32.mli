(** CRC-32 (IEEE 802.3 polynomial) — the WAL's record checksum. *)

val string : string -> int32
(** Checksum of a whole string. *)

val update : int32 -> string -> int -> int -> int32
(** [update crc s pos len] extends [crc] with [len] bytes of [s] starting
    at [pos]. *)
