(** Append-only write-ahead log with CRC-framed records.

    Each record is framed as [len₃₂ᴸᴱ crc₃₂ᴸᴱ payload]: a 4-byte
    little-endian payload length, the payload's CRC-32, then the payload.
    Records are redo entries — the in-memory operation is applied first and
    the record written after, so recovery replays the log forward.

    A crash can tear the last record (short write); {!open_} detects the
    torn tail by length/CRC validation and truncates the file back to the
    last valid record.  Exported probes: [wal_appends_total],
    [wal_fsyncs_total], [wal_torn_tails_total]. *)

type t

val open_ : ?fsync:bool -> string -> t * string list
(** [open_ path] opens (creating if needed) the log, validates it, cuts
    any torn tail, and returns the handle positioned for append together
    with the surviving records, oldest first.  [fsync] (default [true])
    makes every {!append} and {!reset} durable before returning. *)

val append : t -> string -> unit
(** Append one record (and fsync it when the log was opened with
    [~fsync:true]).  This is the commit point of the operation the record
    describes. *)

val sync : t -> unit
(** Explicit fsync (useful with [~fsync:false] batching). *)

val reset : t -> unit
(** Truncate the log to empty — called after a snapshot made its records
    redundant. *)

val appended : t -> int
(** Records appended through this handle. *)

val path : t -> string
val close : t -> unit

val records : string -> string list
(** Read-only scan of a log file: the valid records, oldest first, torn
    tail excluded.  Does not modify the file. *)
