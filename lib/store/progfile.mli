(** CRC-framed container for compiled bytecode programs.

    The file layout is a fixed 12-byte header — an 8-byte magic, a 4-byte
    little-endian format version — followed by one WAL-style frame: 4-byte
    little-endian payload length, 4-byte little-endian CRC-32 of the
    payload, then the {!Interaction.Bytecode} payload itself.  Trailing
    bytes after the frame are rejected: an artifact is exactly one
    program.

    Every failure mode reads as a clear [Error] — wrong magic, unsupported
    version, truncation anywhere (header, frame header, payload), CRC
    mismatch, or a payload that fails {!Interaction.Bytecode.decode}'s
    structural validation — never an exception or a silently wrong
    program. *)

val magic : string
val version : int

val write : string -> Interaction.Bytecode.program -> unit
(** [write path p] — binary, whole file in one write.
    @raise Sys_error on I/O failure. *)

val read : string -> (Interaction.Bytecode.program, string) result
(** Load and validate an artifact.  I/O errors are [Error] too. *)

val of_string : string -> (Interaction.Bytecode.program, string) result
(** Validate in-memory contents (the unit tests cut artifacts at every
    byte boundary through this). *)

val to_string : Interaction.Bytecode.program -> string
