(* Compiled-program artifacts: magic + version, then one CRC frame.

   The frame discipline is the WAL's (4-byte LE length, 4-byte LE CRC-32,
   payload), but where the WAL heals a torn tail by truncation, an
   artifact is all-or-nothing: any damage — short file, bad magic, future
   version, length out of bounds, CRC mismatch, trailing garbage — is a
   load error, because a guard compiled from half a program would answer
   wrongly rather than crash. *)

let magic = "IEXBYTC1"
let version = 1
let header_len = String.length magic + 4
let frame_header_len = 8
let max_payload_len = 64 * 1024 * 1024

let to_string p =
  let payload = Interaction.Bytecode.encode p in
  let len = String.length payload in
  let b = Bytes.create (header_len + frame_header_len + len) in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  Bytes.set_int32_le b (String.length magic) (Int32.of_int version);
  Bytes.set_int32_le b header_len (Int32.of_int len);
  Bytes.set_int32_le b (header_len + 4) (Crc32.string payload);
  Bytes.blit_string payload 0 b (header_len + frame_header_len) len;
  Bytes.unsafe_to_string b

let of_string s =
  let n = String.length s in
  if n < header_len then Error "program artifact: truncated header"
  else if String.sub s 0 (String.length magic) <> magic then
    Error "program artifact: bad magic (not a compiled program)"
  else
    let v = Int32.to_int (String.get_int32_le s (String.length magic)) in
    if v <> version then
      Error
        (Printf.sprintf "program artifact: unsupported format version %d (expected %d)" v
           version)
    else if n < header_len + frame_header_len then
      Error "program artifact: truncated frame header"
    else
      let len = Int32.to_int (String.get_int32_le s header_len) in
      if len < 0 || len > max_payload_len then
        Error "program artifact: frame length out of bounds"
      else if header_len + frame_header_len + len > n then
        Error "program artifact: truncated payload"
      else if header_len + frame_header_len + len < n then
        Error "program artifact: trailing bytes after the program frame"
      else
        let crc = String.get_int32_le s (header_len + 4) in
        let payload = String.sub s (header_len + frame_header_len) len in
        if Crc32.string payload <> crc then
          Error "program artifact: CRC mismatch (corrupt payload)"
        else Interaction.Bytecode.decode payload

let write path p =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string p))

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error m -> Error ("program artifact: " ^ m)
