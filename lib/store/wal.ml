(* Append-only write-ahead log.

   Record framing: a fixed 8-byte header — 4-byte little-endian payload
   length, 4-byte little-endian CRC-32 of the payload — followed by the
   payload bytes.  Appends are redo records: the in-memory operation has
   already been applied when the record is written, and recovery replays
   the log forward from the last snapshot.

   Torn-tail discipline: a crash can leave a partial record at the end of
   the file (short header, short payload, or a payload whose CRC does not
   match).  [open_] scans the log from the start, keeps every record up to
   the last valid one, and truncates the file there — a torn tail is
   expected damage, silently healed; corruption *before* the tail would
   also be cut off there, which is the only safe interpretation without a
   record index. *)

let m_appends = ref 0
let m_fsyncs = ref 0
let m_truncated = ref 0

let () =
  let probe name r = Telemetry.register_probe name (fun () -> float_of_int !r) in
  probe "wal_appends_total" m_appends;
  probe "wal_fsyncs_total" m_fsyncs;
  probe "wal_torn_tails_total" m_truncated

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync : bool;
  mutable appended : int;  (* records appended through this handle *)
  mutable closed : bool;
}

let header_len = 8

(* Reject absurd lengths before allocating: a corrupt header must not ask
   for gigabytes.  Generous for real records (states are small sexps). *)
let max_record_len = 64 * 1024 * 1024

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (header_len + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Crc32.string payload);
  Bytes.blit_string payload 0 b header_len len;
  b

(* Scan [contents], returning the valid records (oldest first) and the
   byte offset just past the last valid one. *)
let scan contents =
  let n = String.length contents in
  let rec go off acc =
    if off + header_len > n then (List.rev acc, off)
    else
      let len = Int32.to_int (String.get_int32_le contents off) in
      if len < 0 || len > max_record_len || off + header_len + len > n then
        (List.rev acc, off)
      else
        let crc = String.get_int32_le contents (off + 4) in
        let payload = String.sub contents (off + header_len) len in
        if Crc32.string payload <> crc then (List.rev acc, off)
        else go (off + header_len + len) (payload :: acc)
  in
  go 0 []

let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

let records path = fst (scan (read_file path))

let open_ ?(fsync = true) path =
  let contents = read_file path in
  let recs, valid = scan contents in
  if valid < String.length contents then incr m_truncated;
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  Unix.ftruncate fd valid;
  ignore (Unix.lseek fd valid Unix.SEEK_SET);
  ({ path; fd; fsync; appended = 0; closed = false }, recs)

let path t = t.path

let really_write fd b =
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let sync t =
  Unix.fsync t.fd;
  incr m_fsyncs

let append t payload =
  if t.closed then invalid_arg "Wal.append: closed";
  let t0 = if !Telemetry.on then Telemetry.now () else 0L in
  really_write t.fd (frame payload);
  t.appended <- t.appended + 1;
  incr m_appends;
  if t.fsync then sync t;
  if !Telemetry.on then
    (* dur_ns covers write + fsync: the timed-point convention the trace
       analyzer relies on to carve WAL time out of the enclosing span *)
    let dur = Int64.to_int (Int64.sub (Telemetry.now ()) t0) in
    Telemetry.event "wal.append"
      ~fields:
        [ ("path", Telemetry.Str t.path);
          ("bytes", Telemetry.Int (String.length payload));
          ("fsync", Telemetry.Bool t.fsync);
          ("dur_ns", Telemetry.Int dur) ]

let appended t = t.appended

let reset t =
  if t.closed then invalid_arg "Wal.reset: closed";
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  if t.fsync then sync t

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end
