(* A durable store directory:

     DIR/snapshot.sexp   last full image (atomic: tmp + fsync + rename)
     DIR/wal.log         redo records since that snapshot (CRC-framed)

   Recovery = load the snapshot (if any), then replay the WAL records on
   top of it.  A snapshot is only allowed to supersede the log once it is
   durably on disk — write tmp, fsync tmp, rename over snapshot.sexp,
   fsync the directory, and only then reset the WAL.

   That ordering leaves one window: a crash after the rename but before
   the reset reopens to the new snapshot plus a log of records the
   snapshot already covers — replaying them would apply every covered
   operation twice.  Snapshot generations close it: each snapshot file
   carries a generation header, and the first record of a freshly reset
   WAL is a marker (NUL-prefixed, so it can never collide with a caller
   payload) naming the generation it follows.  At open, records are live
   only if they sit behind the marker matching the snapshot's generation;
   a log without that marker is entirely covered and is discarded. *)

let m_snapshots = ref 0
let m_snapshot_bytes = ref 0

let () =
  let probe name r = Telemetry.register_probe name (fun () -> float_of_int !r) in
  probe "snapshot_writes_total" m_snapshots;
  probe "snapshot_last_bytes" m_snapshot_bytes

type t = {
  sdir : string;
  fsync : bool;
  wal : Wal.t;
  mutable generation : int;  (* snapshots taken over this directory *)
  mutable records_since_snapshot : int;
}

(* snapshot file = "gen N\n" header + caller image; WAL marker record =
   "\x00gen N" (caller payloads are sexps, never NUL-led) *)

let snapshot_header gen = Printf.sprintf "gen %d\n" gen
let marker gen = Printf.sprintf "\x00gen %d" gen
let is_marker r = String.length r > 0 && r.[0] = '\x00'

let parse_snapshot raw =
  match String.index_opt raw '\n' with
  | Some i when i > 4 && String.sub raw 0 4 = "gen " -> (
    match int_of_string_opt (String.sub raw 4 (i - 4)) with
    | Some g -> (g, String.sub raw (i + 1) (String.length raw - i - 1))
    | None -> (0, raw))
  | _ -> (0, raw)

let snapshot_file dir = Filename.concat dir "snapshot.sexp"
let snapshot_tmp dir = Filename.concat dir "snapshot.tmp"
let wal_file dir = Filename.concat dir "wal.log"

let fsync_dir dir =
  (* make the rename itself durable: fsync the directory entry *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
  | exception Unix.Unix_error _ -> ()

let read_snapshot dir =
  let path = snapshot_file dir in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    (* EEXIST can race with a sibling shard creating the same parent *)
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg ("Store.open_: not a directory: " ^ dir)

let open_ ?(fsync = true) dir =
  ensure_dir dir;
  (* a leftover tmp snapshot is an interrupted write: discard it *)
  if Sys.file_exists (snapshot_tmp dir) then Sys.remove (snapshot_tmp dir);
  let snapshot_raw = read_snapshot dir in
  let wal, records = Wal.open_ ~fsync (wal_file dir) in
  let generation, snapshot, live =
    match snapshot_raw with
    | None -> (0, None, List.filter (fun r -> not (is_marker r)) records)
    | Some raw ->
      let gen, image = parse_snapshot raw in
      let live =
        match records with
        | m :: rest when is_marker m && m = marker gen -> rest
        | _ :: _ ->
          (* every record predates the snapshot: the crash hit between the
             snapshot rename and the WAL reset — replaying them over the
             image that already covers them would double-apply *)
          Wal.reset wal;
          []
        | [] -> []
      in
      (gen, Some image, live)
  in
  ( { sdir = dir; fsync; wal; generation;
      records_since_snapshot = List.length live },
    snapshot,
    live )

let dir t = t.sdir

let append t payload =
  Wal.append t.wal payload;
  t.records_since_snapshot <- t.records_since_snapshot + 1

let records_since_snapshot t = t.records_since_snapshot

let snapshot t image =
  let t0 = if !Telemetry.on then Telemetry.now () else 0L in
  let gen = t.generation + 1 in
  let tmp = snapshot_tmp t.sdir in
  let oc = open_out_bin tmp in
  (try
     output_string oc (snapshot_header gen);
     output_string oc image;
     flush oc;
     if t.fsync then Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp (snapshot_file t.sdir);
  if t.fsync then fsync_dir t.sdir;
  (* only now is the snapshot durable: the log's records are redundant *)
  Wal.reset t.wal;
  (* generation marker: records appended after it are the ones the
     snapshot does not cover *)
  Wal.append t.wal (marker gen);
  t.generation <- gen;
  t.records_since_snapshot <- 0;
  incr m_snapshots;
  m_snapshot_bytes := String.length image;
  if !Telemetry.on then
    let dur = Int64.to_int (Int64.sub (Telemetry.now ()) t0) in
    Telemetry.event "store.snapshot"
      ~fields:
        [ ("dir", Telemetry.Str t.sdir);
          ("bytes", Telemetry.Int (String.length image));
          ("dur_ns", Telemetry.Int dur) ]

let sync t = Wal.sync t.wal
let close t = Wal.close t.wal
