(** A durable store directory: one snapshot plus a write-ahead log.

    Layout: [DIR/snapshot.sexp] (last full image, written atomically via
    tmp + fsync + rename + directory fsync) and [DIR/wal.log] (CRC-framed
    redo records since that snapshot — see {!Wal}).  Recovery loads the
    snapshot and replays the log on top.  The payloads are opaque strings;
    the caller defines the image and record formats.

    Exported probes: [snapshot_writes_total], [snapshot_last_bytes] (plus
    the {!Wal} probes). *)

type t

val open_ : ?fsync:bool -> string -> t * string option * string list
(** [open_ dir] creates [dir] if needed, discards any interrupted
    temporary snapshot, heals a torn WAL tail, drops WAL records the
    snapshot already covers (a crash can land between the snapshot rename
    and the WAL truncation; generation markers detect the stale log), and
    returns the store together with the current snapshot image (if any)
    and the live WAL records, oldest first.  [fsync] (default [true]) governs both the WAL and
    snapshot durability. *)

val append : t -> string -> unit
(** Append a redo record — the commit point of the logged operation. *)

val snapshot : t -> string -> unit
(** Atomically replace the snapshot with [image], then truncate the WAL
    (its records are covered by the new snapshot). *)

val records_since_snapshot : t -> int
(** WAL records not yet covered by a snapshot (replay cost of a crash
    right now); used to drive automatic snapshot cadence. *)

val dir : t -> string

val sync : t -> unit
(** Explicit WAL fsync, for [~fsync:false] batching. *)

val close : t -> unit
