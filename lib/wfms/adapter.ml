open Interaction
open Interaction_manager

type adaptation =
  | Unadapted
  | Adapted_worklists
  | Adapted_engine

type config = {
  adaptation : adaptation;
  rogue_handler : bool;
  handler_crash_every : int option;
  seed : int;
  max_steps : int;
}

let default_config =
  { adaptation = Adapted_engine; rogue_handler = false; handler_crash_every = None;
    seed = 42; max_steps = 2000 }

type outcome = {
  steps : int;
  executed : int;
  violations : int;
  messages : int;
  denials : int;
  completed_cases : int;
  manager_timeouts : int;
  manager_state_size : int;
}

type kind =
  | Start
  | Finish

let action_of case kind activity =
  match kind with
  | Start -> Workflow.start_action case activity
  | Finish -> Workflow.term_action case activity

let advance case kind activity =
  match kind with
  | Start -> Workflow.start_activity case activity
  | Finish -> Workflow.finish_activity case activity

let m_executed = Telemetry.counter "wfms_workitems_executed_total"
let m_denied = Telemetry.counter "wfms_workitems_denied_total"
let m_violations = Telemetry.counter "wfms_violations_total"

let kind_name = function Start -> "start" | Finish -> "finish"

(* Work-item lifecycle events: attempt → executed | denied, plus a
   violation event whenever the reference monitor flags an action the
   constraint forbids. *)
let workitem_event ?(fields = []) name case kind activity =
  if !Telemetry.on then
    Telemetry.event name
      ~fields:
        ([ ("case", Telemetry.Str (Workflow.case_id case));
           ("activity", Telemetry.Str activity);
           ("phase", Telemetry.Str (kind_name kind)) ]
        @ fields)

let run_unobserved cfg ~constraints ~cases =
  let rng = Random.State.make [| cfg.seed |] in
  let cases =
    List.map (fun (wf, id, args) -> Workflow.start_case wf ~id ~args) cases
  in
  let mgr = Manager.create constraints in
  (* The request queue between the work-item handlers and the manager: the
     recoverable-request transport of Section 7.  Every attempt travels
     through it, so a recorded causal chain spans the full path
     adapter -> queue -> manager -> engine. *)
  let requests : Action.concrete Mqueue.t = Mqueue.create ~name:"adapter.requests" in
  (* Independent reference monitor: counts actions the constraint forbids
     (executed anyway), without advancing on them so later checks stay
     meaningful. *)
  let monitor = Engine.create constraints in
  let calpha = Alpha.of_expr constraints in
  let violations = ref 0 in
  let observe c =
    if Alpha.mem calpha c && not (Engine.try_action monitor c) then begin
      incr violations;
      Telemetry.incr m_violations;
      if !Telemetry.on then
        Telemetry.event "workitem.violation"
          ~fields:[ ("action", Telemetry.Str (Action.concrete_to_string c)) ]
    end
  in
  let messages = ref 0 in
  let denials = ref 0 in
  let executed = ref 0 in
  let crash_countdown =
    ref (match cfg.handler_crash_every with Some n when n > 0 -> n | _ -> -1)
  in
  let stuck_rounds = ref 0 in
  let run_action client c =
    (* The coordination protocol of Fig. 10: ask(2 messages incl. reply),
       execute locally, confirm(1).  The request rides the durable queue;
       its envelope carries the attempt's trace id. *)
    messages := !messages + 2;
    Mqueue.send requests c;
    let c =
      match Mqueue.receive_envelope requests with
      | Some env ->
        Mqueue.ack requests;
        Mqueue.payload env
      | None -> c  (* unreachable: we just enqueued *)
    in
    match Manager.ask mgr ~client c with
    | Manager.Granted ->
      if !crash_countdown > 0 then decr crash_countdown;
      if !crash_countdown = 0 then (
        (* The user's PC goes down between grant and confirm: the manager
           stays stuck in its critical region (steps 2–5). *)
        crash_countdown :=
          (match cfg.handler_crash_every with Some n -> n | None -> -1);
        false)
      else (
        observe c;
        messages := !messages + 1;
        Manager.confirm mgr ~client c;
        true)
    | Manager.Denied ->
      incr denials;
      false
    | Manager.Busy ->
      incr denials;
      incr stuck_rounds;
      (* The paper's remedy for a stuck manager is a timeout-based, more
         expensive protocol; we model the timeout after a few wasted asks. *)
      if !stuck_rounds >= 3 then (
        Manager.timeout_outstanding mgr;
        stuck_rounds := 0);
      false
  in
  let moves () =
    List.concat_map
      (fun case ->
        List.map (fun a -> (case, Start, a)) (Workflow.startable case)
        @ List.map (fun a -> (case, Finish, a)) (Workflow.completable case))
      cases
  in
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < cfg.max_steps do
    incr steps;
    match moves () with
    | [] -> continue := false
    | ms -> (
      let case, kind, activity = List.nth ms (Random.State.int rng (List.length ms)) in
      let c = action_of case kind activity in
      (* every externally submitted work item is one trace *)
      let process () =
      workitem_event "workitem.attempt" case kind activity;
      let did_execute () =
        ignore (advance case kind activity);
        incr executed;
        Telemetry.incr m_executed;
        workitem_event "workitem.executed" case kind activity
      in
      let was_denied () =
        Telemetry.incr m_denied;
        (* denial provenance: the blame set rides the work-item event *)
        let fields =
          if not !Telemetry.on then []
          else
            match Manager.explain_denial mgr c with
            | Some x ->
              ("reason", Telemetry.Str (Explain.summary x)) :: Explain.fields x
            | None -> []
        in
        workitem_event ~fields "workitem.denied" case kind activity
      in
      match cfg.adaptation with
      | Unadapted ->
        observe c;
        did_execute ()
      | Adapted_worklists ->
        (* Keeping the worklist markings current: one ask/reply round-trip
           per offered item per refresh (the "substantial communication
           overhead" of handler adaptation). *)
        messages := !messages + (2 * List.length ms);
        if cfg.rogue_handler && Random.State.int rng 4 = 0 then (
          (* a standard, non-adapted handler executes behind the manager's
             back: the approach is not waterproof *)
          observe c;
          did_execute ())
        else if run_action ("worklist:" ^ Workflow.case_id case) c then did_execute ()
        else was_denied ()
      | Adapted_engine ->
        (* The engine is the single interaction client; even rogue worklist
           requests pass through it. *)
        if run_action "engine" c then did_execute () else was_denied ()
      in
      if !Telemetry.on then Telemetry.in_new_trace process else process ())
  done;
  let completed_cases =
    List.length (List.filter Workflow.is_finished cases)
  in
  { steps = !steps;
    executed = !executed;
    violations = !violations;
    messages = !messages;
    denials = !denials;
    completed_cases;
    manager_timeouts = (Manager.stats mgr).Manager.timeouts;
    manager_state_size = Manager.state_size mgr
  }

let adaptation_name = function
  | Unadapted -> "unadapted"
  | Adapted_worklists -> "worklists"
  | Adapted_engine -> "engine"

let run cfg ~constraints ~cases =
  if not !Telemetry.on then run_unobserved cfg ~constraints ~cases
  else
    Telemetry.span "adapter.run"
      ~fields:
        [ ("adaptation", Telemetry.Str (adaptation_name cfg.adaptation));
          ("cases", Telemetry.Int (List.length cases)) ]
      ~exit:(fun o ->
        [ ("steps", Telemetry.Int o.steps);
          ("executed", Telemetry.Int o.executed);
          ("violations", Telemetry.Int o.violations) ])
      (fun () -> run_unobserved cfg ~constraints ~cases)

let pp_outcome ppf o =
  Format.fprintf ppf
    "steps=%d executed=%d violations=%d messages=%d denials=%d completed=%d timeouts=%d"
    o.steps o.executed o.violations o.messages o.denials o.completed_cases
    o.manager_timeouts
