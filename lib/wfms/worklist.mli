(** Worklist handlers — the user-facing runtime component of a WfMS.

    A worklist handler presents the activities currently offered to one user
    and lets the user start and complete them.  Items are (case, activity)
    pairs; {!refresh} recomputes the offer from the control-flow state of
    the given cases.  Whether an item is {e marked executable} additionally
    depends on the interaction manager in the adapted configurations of
    Fig. 11 (see {!Adapter}). *)

type item = {
  case : Workflow.case;
  activity : string;
}

type t

val create : user:string -> t
val user : t -> string

val refresh : t -> Workflow.case list -> item list
(** Recompute and store the offered items: every startable activity of every
    given case. *)

val items : t -> item list
(** Items from the last {!refresh}. *)

val pp_item : Format.formatter -> item -> unit
