type item = {
  case : Workflow.case;
  activity : string;
}

type t = {
  wuser : string;
  mutable witems : item list;
}

let create ~user = { wuser = user; witems = [] }
let user t = t.wuser

let refresh t cases =
  let items =
    List.concat_map
      (fun case -> List.map (fun activity -> { case; activity }) (Workflow.startable case))
      cases
  in
  t.witems <- items;
  if !Telemetry.on then
    Telemetry.event "worklist.refresh"
      ~fields:
        [ ("user", Telemetry.Str t.wuser); ("items", Telemetry.Int (List.length items)) ];
  items

let items t = t.witems

let pp_item ppf { case; activity } =
  Format.fprintf ppf "%s:%s" (Workflow.case_id case) activity
