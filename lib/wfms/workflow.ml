open Interaction

type flow =
  | Task of string
  | Seq of flow list
  | Xor of flow list
  | And of flow list
  | Loop of flow
  | Opt of flow

type t = {
  name : string;
  flow : flow;
}

let rec validate = function
  | Task "" -> invalid_arg "Workflow.make: empty activity name"
  | Task _ -> ()
  | Seq [] | Xor [] | And [] -> invalid_arg "Workflow.make: empty split or sequence"
  | Seq fs | Xor fs | And fs -> List.iter validate fs
  | Loop f | Opt f -> validate f

let make name flow =
  validate flow;
  { name; flow }

let activities wf =
  let rec go acc = function
    | Task a -> if List.mem a acc then acc else a :: acc
    | Seq fs | Xor fs | And fs -> List.fold_left go acc fs
    | Loop f | Opt f -> go acc f
  in
  List.rev (go [] wf.flow)

let rec flow_to_expr args = function
  | Task a -> Expr.activity a (List.map Action.value args)
  | Seq fs -> Expr.seq_list (List.map (flow_to_expr args) fs)
  | Xor fs -> Expr.alt_list (List.map (flow_to_expr args) fs)
  | And fs -> Expr.par_list (List.map (flow_to_expr args) fs)
  | Loop f -> Expr.seq_iter (flow_to_expr args f)
  | Opt f -> Expr.opt (flow_to_expr args f)

let to_expr wf ~args = flow_to_expr args wf.flow

(* ------------------------------------------------------------------ *)
(* Textual workflow definitions                                        *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let perr fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

type wtok =
  | WID of string
  | LBRACE
  | RBRACE
  | WSEMI
  | WEOF

let wtok_to_string = function
  | WID s -> Printf.sprintf "identifier %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | WSEMI -> "';'"
  | WEOF -> "end of input"

let wlex s =
  let n = String.length s in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let rec go i acc =
    if i >= n then List.rev (WEOF :: acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '{' -> go (i + 1) (LBRACE :: acc)
      | '}' -> go (i + 1) (RBRACE :: acc)
      | ';' -> go (i + 1) (WSEMI :: acc)
      | c when is_ident c ->
        let j = ref i in
        while !j < n && is_ident s.[!j] do
          incr j
        done;
        go !j (WID (String.sub s i (!j - i)) :: acc)
      | c -> perr "unexpected character %C" c
  in
  go 0 []

let parse_exn ~name input =
  let toks = ref [] in
  let peek () = match !toks with [] -> WEOF | t :: _ -> t in
  let advance () = match !toks with [] -> () | _ :: r -> toks := r in
  let expect t =
    if peek () = t then advance ()
    else perr "expected %s but found %s" (wtok_to_string t) (wtok_to_string (peek ()))
  in
  let rec parse_flow () =
    match peek () with
    | WID (("seq" | "xor" | "and" | "loop" | "opt") as kw) when peek2 () = LBRACE ->
      advance ();
      expect LBRACE;
      let rec items acc =
        let f = parse_flow () in
        if peek () = WSEMI then (advance (); items (f :: acc)) else List.rev (f :: acc)
      in
      let fs = items [] in
      expect RBRACE;
      (match (kw, fs) with
      | "seq", fs -> Seq fs
      | "xor", fs -> Xor fs
      | "and", fs -> And fs
      | "loop", [ f ] -> Loop f
      | "opt", [ f ] -> Opt f
      | ("loop" | "opt"), _ -> perr "%s takes exactly one body" kw
      | _ -> assert false)
    | WID a ->
      advance ();
      Task a
    | t -> perr "expected a flow but found %s" (wtok_to_string t)
  and peek2 () = match !toks with _ :: t :: _ -> t | _ -> WEOF in
  try
    toks := wlex input;
    let f = parse_flow () in
    if peek () <> WEOF then perr "trailing input";
    make name f
  with Parse_error m -> invalid_arg ("Workflow.parse: " ^ m)

let parse ~name input =
  try Ok (parse_exn ~name input) with Invalid_argument m -> Error m

let rec pp_flow ppf flow =
  let plist ppf fs =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
      pp_flow ppf fs
  in
  match flow with
  | Task a -> Format.pp_print_string ppf a
  | Seq fs -> Format.fprintf ppf "@[<hv 2>seq {@ %a }@]" plist fs
  | Xor fs -> Format.fprintf ppf "@[<hv 2>xor {@ %a }@]" plist fs
  | And fs -> Format.fprintf ppf "@[<hv 2>and {@ %a }@]" plist fs
  | Loop f -> Format.fprintf ppf "@[<hv 2>loop {@ %a }@]" pp_flow f
  | Opt f -> Format.fprintf ppf "@[<hv 2>opt {@ %a }@]" pp_flow f

let pp ppf wf = Format.fprintf ppf "@[<hv 2>workflow %s =@ %a@]" wf.name pp_flow wf.flow

type case = {
  id : string;
  wf : t;
  cargs : Action.value list;
  session : Engine.session;
}

let start_case wf ~id ~args =
  { id; wf; cargs = args; session = Engine.create (to_expr wf ~args) }

let case_id c = c.id
let case_args c = c.cargs
let workflow c = c.wf

let start_action c a = Expr.start_action a c.cargs
let term_action c a = Expr.term_action a c.cargs

let startable c =
  List.filter (fun a -> Engine.permitted c.session (start_action c a)) (activities c.wf)

let completable c =
  List.filter (fun a -> Engine.permitted c.session (term_action c a)) (activities c.wf)

let start_activity c a = Engine.try_action c.session (start_action c a)
let finish_activity c a = Engine.try_action c.session (term_action c a)
let is_finished c = Engine.is_final c.session
let trace c = Engine.trace c.session
