open Interaction

(** Integration of the WfMS with the interaction manager (Section 7,
    Fig. 11): adapt the worklist handlers, adapt the workflow engine, or —
    as the baseline the paper argues against — do not coordinate at all.

    The simulation drives a set of workflow cases by repeatedly picking a
    pseudo-random control-flow-enabled step (seeded, hence reproducible) and
    executing it under the chosen adaptation:

    - {!Unadapted}: the WfMS never consults the manager; interdependent
      cases trample the shared constraint (violations are counted by an
      independent reference monitor).
    - {!Adapted_worklists}: every worklist handler mediates between engine
      and manager.  Keeping the worklist markings current costs one
      ask/reply round-trip per offered item per refresh; handlers run on
      unreliable desktop PCs, so a handler may crash between grant and
      confirm, leaving the manager stuck in its critical region until a
      timeout — and a {e standard} (non-adapted) handler attached to the
      same engine can still execute activities behind the manager's back
      ("not waterproof").
    - {!Adapted_engine}: the engine itself is the (single, reliable)
      interaction client; it asks only when an execution is attempted, and
      every path into the engine is covered (waterproof). *)

type adaptation =
  | Unadapted
  | Adapted_worklists
  | Adapted_engine

type config = {
  adaptation : adaptation;
  rogue_handler : bool;
      (** a standard worklist handler occasionally bypasses the manager
          (only meaningful under [Adapted_worklists]) *)
  handler_crash_every : int option;
      (** crash the worklist handler after every n-th grant, before the
          confirm (only under [Adapted_worklists]) *)
  seed : int;
  max_steps : int;
}

val default_config : config
(** [Adapted_engine], no rogue handler, no crashes, seed 42, 2000 steps. *)

type outcome = {
  steps : int;
  executed : int;  (** start/termination actions actually executed *)
  violations : int;  (** executed actions the constraint forbade *)
  messages : int;  (** handler/engine ↔ manager protocol messages *)
  denials : int;  (** executions deferred because the manager said no *)
  completed_cases : int;
  manager_timeouts : int;  (** critical-region recoveries after handler crashes *)
  manager_state_size : int;  (** size of the manager's final state *)
}

val run :
  config ->
  constraints:Expr.t ->
  cases:(Workflow.t * string * Action.value list) list ->
  outcome
(** Start one case per [(workflow, case-id, args)] triple and drive the
    ensemble to completion (or [max_steps]). *)

val pp_outcome : Format.formatter -> outcome -> unit
