
module Manager = Interaction_manager.Manager

type status =
  | Offered
  | Suspended
  | Allocated of string
  | Started of string
  | Completed of string

type item = {
  item_id : int;
  case : Workflow.case;
  activity : string;
  mutable status : status;
  mutable journal : (status * int) list;
}

type t = {
  manager : Manager.t option;
  users : (string * string list) list;
  role_of : string -> string;
  cases : Workflow.case list;
  mutable pool : item list;
  mutable next_id : int;
  mutable ticks : int;
}

let clock t = t.ticks

let tick t item status =
  t.ticks <- t.ticks + 1;
  item.status <- status;
  item.journal <- (status, t.ticks) :: item.journal

let permitted_by_manager t case activity =
  match t.manager with
  | None -> true
  | Some m -> Manager.permitted m (Workflow.start_action case activity)

let offered_status t case activity =
  if permitted_by_manager t case activity then Offered else Suspended

let refresh t =
  (* keep items that are in progress; re-derive the rest from control flow *)
  let in_progress =
    List.filter
      (fun i -> match i.status with Allocated _ | Started _ -> true | _ -> false)
      t.pool
  in
  let taken case activity =
    List.exists
      (fun i -> i.case == case && String.equal i.activity activity)
      in_progress
  in
  let fresh =
    List.concat_map
      (fun case ->
        Workflow.startable case
        |> List.filter (fun a -> not (taken case a))
        |> List.map (fun activity ->
               let id = t.next_id in
               t.next_id <- id + 1;
               let status = offered_status t case activity in
               t.ticks <- t.ticks + 1;
               { item_id = id; case; activity; status; journal = [ (status, t.ticks) ] }))
      t.cases
  in
  t.pool <- in_progress @ fresh

let create ?manager ~users ~role_of cases =
  let t =
    { manager; users; role_of; cases; pool = []; next_id = 1; ticks = 0 }
  in
  refresh t;
  t

let items t = t.pool

let roles_of t user = match List.assoc_opt user t.users with Some r -> r | None -> []

let visible_to t user item =
  match item.status with
  | Offered | Suspended -> List.mem (t.role_of item.activity) (roles_of t user)
  | Allocated u | Started u -> String.equal u user
  | Completed _ -> false

let worklist t ~user = List.filter (visible_to t user) t.pool

let allocate t ~user item =
  match item.status with
  | Suspended -> Error "item is suspended (forbidden by the interaction manager)"
  | Allocated _ | Started _ | Completed _ -> Error "item is already taken"
  | Offered ->
    if not (List.mem (t.role_of item.activity) (roles_of t user)) then
      Error (Printf.sprintf "user %s lacks role %s" user (t.role_of item.activity))
    else begin
      tick t item (Allocated user);
      Ok ()
    end

(* Each submission through the worklist boundary is one externally
   initiated request: it gets its own trace id, so the coordination round
   it triggers (and any denial blame) forms one recorded causal chain. *)
let run_protocol t ~client action =
  match t.manager with
  | None -> true
  | Some m ->
    if !Telemetry.on then
      Telemetry.in_new_trace (fun () -> Manager.execute m ~client action)
    else Manager.execute m ~client action

(* Denial provenance for the human-facing error: append the minimal blame
   set ("denied because the and-branch still requires b") when the manager
   can attribute the denial. *)
let denial_reason t action fallback =
  match t.manager with
  | None -> fallback
  | Some m -> (
    match Manager.explain_denial m action with
    | Some x -> fallback ^ ": " ^ Interaction.Explain.summary x
    | None -> fallback)

let start t ~user item =
  match item.status with
  | Allocated u when String.equal u user ->
    let action = Workflow.start_action item.case item.activity in
    if not (run_protocol t ~client:user action) then begin
      tick t item Suspended;
      Error (denial_reason t action "the interaction manager denied the start")
    end
    else if not (Workflow.start_activity item.case item.activity) then
      Error "the workflow engine no longer enables this activity"
    else begin
      tick t item (Started user);
      Ok ()
    end
  | Allocated _ -> Error "allocated to a different user"
  | Offered | Suspended -> Error "allocate the item first"
  | Started _ | Completed _ -> Error "item is already running or done"

let complete t ~user item =
  match item.status with
  | Started u when String.equal u user ->
    let action = Workflow.term_action item.case item.activity in
    if not (run_protocol t ~client:user action) then
      Error (denial_reason t action "the interaction manager denied the completion")
    else if not (Workflow.finish_activity item.case item.activity) then
      Error "the workflow engine rejected the completion"
    else begin
      tick t item (Completed user);
      refresh t;
      Ok ()
    end
  | Started _ -> Error "started by a different user"
  | Offered | Suspended | Allocated _ -> Error "item has not been started"
  | Completed _ -> Error "item is already done"

let status_to_string = function
  | Offered -> "offered"
  | Suspended -> "suspended"
  | Allocated u -> "allocated:" ^ u
  | Started u -> "started:" ^ u
  | Completed u -> "completed:" ^ u

let pp_item ppf i =
  Format.fprintf ppf "#%d %s:%s [%s]" i.item_id (Workflow.case_id i.case) i.activity
    (status_to_string i.status)
