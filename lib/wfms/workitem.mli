(** WfMC-style work items.

    Section 7 situates the adaptation strategies around "the WfMS's API
    [which] is either standardized by the Workflow Management Coalition
    (WfMC) or at least documented by the vendor".  This module provides
    that substrate: the standard work-item lifecycle
    (offered → allocated → started → completed) with role-based
    distribution, driven by the control-flow state of the running cases and
    — in the adapted configuration — filtered through an interaction
    manager, so items whose start action the coordination constraint
    currently forbids are visibly {e suspended} rather than offered
    (the introduction's "temporarily disappear from the worklists — or at
    least become marked as currently not executable").

    The pool is the WfMS-facing façade; every state change validates
    against the workflow engine, and an audit trail of lifecycle events is
    kept per item. *)

type status =
  | Offered  (** visible to every user with the required role *)
  | Suspended  (** control flow enables it, the interaction manager forbids it *)
  | Allocated of string  (** claimed by one user *)
  | Started of string
  | Completed of string

type item = private {
  item_id : int;
  case : Workflow.case;
  activity : string;
  mutable status : status;
  mutable journal : (status * int) list;  (** newest first, with a logical clock *)
}

type t

val create :
  ?manager:Interaction_manager.Manager.t ->
  users:(string * string list) list ->
  role_of:(string -> string) ->
  Workflow.case list ->
  t
(** A work-item pool over the given cases.  [users] maps user names to the
    roles they hold; [role_of] assigns each activity the role required to
    work on it.  When [manager] is given, items whose start action the
    manager currently forbids are [Suspended]. *)

val refresh : t -> unit
(** Recompute the pool: startable activities become [Offered] (or
    [Suspended]); items whose activity the control flow no longer enables
    disappear (unless already allocated or started). *)

val items : t -> item list
val worklist : t -> user:string -> item list
(** Items visible to [user]: offered items matching one of the user's
    roles, plus the user's own allocated/started items.  [Suspended] items
    are included (greyed out) so the UI can show them as not executable. *)

val allocate : t -> user:string -> item -> (unit, string) result
(** Claim an offered item.  Fails on suspended items, role mismatches, or
    items already taken. *)

val start : t -> user:string -> item -> (unit, string) result
(** Start an allocated item: runs the coordination protocol against the
    manager (if any) and the workflow engine.  On success the case's start
    action has been executed and confirmed. *)

val complete : t -> user:string -> item -> (unit, string) result
(** Finish a started item (termination action through manager and engine),
    then {!refresh} so newly enabled activities appear. *)

val clock : t -> int
(** The logical clock (number of lifecycle transitions so far). *)

val status_to_string : status -> string
val pp_item : Format.formatter -> item -> unit
