open Interaction

(** A compact structured workflow engine — the substrate the paper assumes
    (its prototypes ran against ProMInanD; we provide an equivalent
    in-process engine).

    A workflow definition is a structured control-flow tree over named
    activities (sequence, XOR/AND splits, loops, optional steps).  A running
    {e case} instantiates the definition with concrete argument values
    (footnote 3's implicit global workflow variables, e.g. patient and
    examination ids); every activity maps to the start/termination action
    pair [a_s(args) − a_t(args)].

    Internally a case is executed by compiling the control flow to an
    interaction expression and driving it with {!Interaction.Engine} — the
    workflow engine dogfoods the formalism it is being synchronized by,
    which is exactly the correspondence footnote 6 sets up. *)

type flow =
  | Task of string  (** an activity *)
  | Seq of flow list  (** sequence *)
  | Xor of flow list  (** conditional branching: exactly one branch *)
  | And of flow list  (** parallel branching: all branches, interleaved *)
  | Loop of flow  (** zero or more sequential repetitions *)
  | Opt of flow  (** skippable step *)

type t = private {
  name : string;
  flow : flow;
}

val make : string -> flow -> t
(** @raise Invalid_argument on empty splits/sequences. *)

val parse : name:string -> string -> (t, string) result
(** Textual workflow definitions:

    {v
    flow ::= activity-name
           | "seq"  "{" flow { ";" flow } "}"
           | "xor"  "{" flow { ";" flow } "}"
           | "and"  "{" flow { ";" flow } "}"
           | "loop" "{" flow "}"
           | "opt"  "{" flow "}"
    v}

    e.g. [seq { order; schedule; and { inform; prepare }; call; perform }]. *)

val parse_exn : name:string -> string -> t

val pp_flow : Format.formatter -> flow -> unit
val pp : Format.formatter -> t -> unit

val activities : t -> string list
(** Distinct activity names, in first-occurrence order. *)

val to_expr : t -> args:Action.value list -> Expr.t
(** Control flow as an interaction expression over the case's activities. *)

(** {1 Cases} *)

type case

val start_case : t -> id:string -> args:Action.value list -> case
val case_id : case -> string
val case_args : case -> Action.value list
val workflow : case -> t

val startable : case -> string list
(** Activities whose start action the control flow currently permits. *)

val completable : case -> string list
(** Activities whose termination action the control flow currently permits
    (i.e. started and not yet terminated). *)

val start_activity : case -> string -> bool
val finish_activity : case -> string -> bool
val is_finished : case -> bool

val start_action : case -> string -> Action.concrete
val term_action : case -> string -> Action.concrete
(** The concrete actions a given activity of this case maps to. *)

val trace : case -> Action.concrete list
(** Actions executed so far. *)
