open Interaction
module G = Interaction_graph.Graph

let ultrasonography =
  Workflow.make "ultrasonography"
    (Workflow.Seq
       [ Task "order"; Task "schedule"; Task "prepare"; Task "call"; Task "perform";
         Task "write_report"; Task "read_report"
       ])

let endoscopy =
  Workflow.make "endoscopy"
    (Workflow.Seq
       [ Task "order"; Task "schedule";
         And [ Task "inform"; Task "prepare" ];
         Task "call"; Task "perform"; Task "write_short_report";
         And [ Task "read_short_report"; Task "write_detailed_report" ];
         Task "read_detailed_report"
       ])

let exam_kinds = [ "sono"; "endo" ]

let workflow_for = function
  | "sono" -> ultrasonography
  | "endo" -> endoscopy
  | x -> invalid_arg (Printf.sprintf "Medical.workflow_for: unknown examination %S" x)

let px = [ Action.param "p"; Action.param "x" ]

let patient_graph =
  G.ForAll
    ( "p",
      G.Use
        ( "flash",
          [ G.ArbitrarilyParallel (G.ForSome ("x", G.activity_p "prepare" px));
            G.ForSome
              ("x", G.Path [ G.activity_p "call" px; G.activity_p "perform" px ]);
            G.ArbitrarilyParallel (G.ForSome ("x", G.activity_p "inform" px))
          ] ) )

let patient_constraint = G.compile patient_graph

let capacity_graph ?(capacity = 3) () =
  G.ForEach
    ( "x",
      G.Multiplier
        ( capacity,
          G.Loop
            (G.ForSome
               ("p", G.Path [ G.activity_p "call" px; G.activity_p "perform" px ])) ) )

let capacity_constraint ?capacity () = G.compile (capacity_graph ?capacity ())

let combined_graph ?capacity () = G.Couple [ patient_graph; capacity_graph ?capacity () ]

let department_constraint ~exam ~capacity =
  let px_fixed = [ Action.param "p"; Action.value exam ] in
  G.compile
    (G.Multiplier
       ( capacity,
         G.Loop
           (G.ForSome
              ("p", G.Path [ G.activity_p "call" px_fixed; G.activity_p "perform" px_fixed ]))
       ))
let combined_constraint ?capacity () = G.compile (combined_graph ?capacity ())

let patient i = "p" ^ string_of_int i

let ensemble ~patients =
  List.concat
    (List.init patients (fun i ->
         let p = patient (i + 1) in
         List.map
           (fun x -> (workflow_for x, Printf.sprintf "%s-%s" p x, [ p; x ]))
           exam_kinds))
