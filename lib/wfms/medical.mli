open Interaction

(** The paper's running example: medical examination workflows (Fig. 1) and
    the patient/capacity constraints of Figs. 3, 6 and 7.

    Workflow activities carry two argument values: the patient id [p] and
    the examination kind [x] (["sono"] or ["endo"]) — footnote 3's global
    workflow variables, implicitly passed to all activities. *)

val ultrasonography : Workflow.t
(** Fig. 1, left: order − schedule − prepare − call − perform −
    write report − read report. *)

val endoscopy : Workflow.t
(** Fig. 1, right: order − schedule − (inform ∥ prepare) − call − perform −
    write short report − (read short report ∥ write detailed report) −
    read detailed report.  (The exact join of the report steps is a
    reconstruction of the figure.) *)

val exam_kinds : string list
(** [\["sono"; "endo"\]]. *)

val workflow_for : string -> Workflow.t
(** @raise Invalid_argument on unknown examination kinds. *)

(** {1 Constraints} *)

val patient_graph : Interaction_graph.Graph.t
(** Fig. 3: for all patients [p], a mutual exclusion ("flash") of (a) being
    prepared for arbitrarily many examinations, (b) passing through exactly
    one examination (call − perform), and (c) being informed about
    arbitrarily many examinations. *)

val patient_constraint : Expr.t

val capacity_graph : ?capacity:int -> unit -> Interaction_graph.Graph.t
(** Fig. 6: for each examination kind [x], at most [capacity] (default 3)
    concurrent and independent repetitions of call − perform, each with an
    arbitrary patient. *)

val capacity_constraint : ?capacity:int -> unit -> Expr.t

val combined_graph : ?capacity:int -> unit -> Interaction_graph.Graph.t
(** Fig. 7: the coupling of the patient and capacity subgraphs. *)

val combined_constraint : ?capacity:int -> unit -> Expr.t

val department_constraint : exam:string -> capacity:int -> Expr.t
(** The Fig. 6 capacity rule for one fixed examination kind.  Constraints
    for different departments have disjoint alphabets, so a coupling of
    them partitions into one interaction manager per department (the
    multi-manager deployment of Section 7; see
    {!Interaction_manager.Federation}). *)

(** {1 Ensembles} *)

val ensemble : patients:int -> (Workflow.t * string * Action.value list) list
(** One ultrasonography and one endoscopy case per patient — the dynamic
    workflow ensemble of the introduction.  Patient ids are ["p1"],
    ["p2"], … *)

val patient : int -> Action.value
