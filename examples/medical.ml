(* The paper's running example, end to end: the two examination workflows of
   Fig. 1 run concurrently for the same patient, coordinated through an
   interaction manager holding the Fig. 3 patient constraint — the activity
   "call patient" disappears from one department's worklist while the other
   examination is in progress, and reappears afterwards (the introduction's
   motivating scenario).

     dune exec examples/medical.exe *)

open Interaction
open Interaction_manager
open Wfms

let show_worklists mgr cases =
  (* A worklist item is offered when the workflow control flow enables it;
     it is marked executable only when the interaction manager agrees. *)
  List.iter
    (fun case ->
      let offered = Workflow.startable case in
      let label a =
        if Manager.permitted mgr (Workflow.start_action case a) then a
        else "(" ^ a ^ ")"
      in
      Format.printf "    %-10s offers: %s@."
        (Workflow.case_id case)
        (if offered = [] then "-" else String.concat ", " (List.map label offered)))
    cases;
  Format.printf "@."

let execute mgr case activity =
  (* The coordination protocol of Fig. 10: ask - reply - execute - confirm. *)
  let client = Workflow.case_id case in
  let step kind_label action advance =
    match Manager.ask mgr ~client action with
    | Manager.Granted ->
      assert (advance ());
      Manager.confirm mgr ~client action;
      Format.printf "  %s %s/%s@." kind_label client activity
    | Manager.Denied -> Format.printf "  DENIED %s %s/%s@." kind_label client activity
    | Manager.Busy -> Format.printf "  BUSY %s %s/%s@." kind_label client activity
  in
  step "start " (Workflow.start_action case activity) (fun () ->
      Workflow.start_activity case activity);
  step "finish" (Workflow.term_action case activity) (fun () ->
      Workflow.finish_activity case activity)

let () =
  Format.printf "=== Inter-workflow coordination (Figs. 1, 3) ===@.@.";
  let constraints = Medical.patient_constraint in
  Format.printf "constraint (Fig. 3): %a@.@." Syntax.pp constraints;
  let mgr = Manager.create constraints in
  let sono =
    Workflow.start_case Medical.ultrasonography ~id:"sono" ~args:[ "p4711"; "sono" ]
  in
  let endo = Workflow.start_case Medical.endoscopy ~id:"endo" ~args:[ "p4711"; "endo" ] in
  let cases = [ sono; endo ] in

  (* Both workflows advance to the point where the patient can be called. *)
  List.iter (execute mgr sono) [ "order"; "schedule"; "prepare" ];
  List.iter (execute mgr endo) [ "order"; "schedule"; "inform"; "prepare" ];
  Format.printf "@.  both departments are ready to call patient p4711:@.";
  show_worklists mgr cases;

  (* The ultrasonography assistant calls the patient first ... *)
  let call_endo = Workflow.start_action endo "call" in
  Manager.subscribe mgr ~client:"endo-worklist" call_endo;
  ignore (Manager.drain_notifications mgr ~client:"endo-worklist");
  execute mgr sono "call";
  Format.printf "@.  patient is in ultrasonography — endoscopy's call is disabled:@.";
  show_worklists mgr cases;
  (match Manager.drain_notifications mgr ~client:"endo-worklist" with
  | notes ->
    List.iter
      (fun (n : Manager.notification) ->
        Format.printf "  [endo worklist update] %s is now %s@."
          (Action.concrete_to_string n.Manager.action)
          (if n.Manager.now_permitted then "executable" else "not executable"))
      notes);

  (* ... performs the examination ... *)
  execute mgr sono "perform";
  Format.printf "@.  ultrasonography done — endoscopy's call reappears:@.";
  show_worklists mgr cases;
  List.iter
    (fun (n : Manager.notification) ->
      Format.printf "  [endo worklist update] %s is now %s@."
        (Action.concrete_to_string n.Manager.action)
        (if n.Manager.now_permitted then "executable" else "not executable"))
    (Manager.drain_notifications mgr ~client:"endo-worklist");
  Manager.unsubscribe mgr ~client:"endo-worklist" call_endo;

  (* Both workflows run to completion. *)
  List.iter (execute mgr sono) [ "write_report"; "read_report" ];
  List.iter (execute mgr endo)
    [ "call"; "perform"; "write_short_report"; "read_short_report";
      "write_detailed_report"; "read_detailed_report" ];
  Format.printf "@.  sono finished: %b, endo finished: %b@." (Workflow.is_finished sono)
    (Workflow.is_finished endo);

  (* Recovery: the manager crashes and replays its durable log. *)
  Format.printf "@.=== Manager recovery (Section 7) ===@.";
  let confirmed = List.length (Manager.confirmed_log mgr) in
  Manager.crash mgr;
  Manager.recover mgr;
  Format.printf "  replayed %d confirmed actions; state size %d; stats: %a@." confirmed
    (Manager.state_size mgr) Manager.pp_stats (Manager.stats mgr)
