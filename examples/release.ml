(* A second coordination domain: software release trains.  Independent
   per-service release workflows are synchronized by cross-cutting rules —
   at most two concurrent deployments, database migrations strictly one at
   a time, and no deployment during a freeze window.  Exactly the paper's
   programme: keep the workflows separate, extract the inter-workflow
   dependencies into small constraint graphs, couple them, and let an
   interaction manager enforce the result.

     dune exec examples/release.exe *)

open Interaction
open Interaction_manager
open Wfms

let service_release =
  Workflow.parse_exn ~name:"release"
    "seq { build; stage; verify; xor { seq { migrate; deploy }; deploy }; announce }"

(* Three independently written rules, coupled into one constraint:
   at most two concurrent deployments; migrations strictly serialized;
   freeze windows mutually exclusive with in-flight deployments. *)
let constraints =
  Syntax.parse_exn
    {|times(2, iter(some s: deploy_s(s) - deploy_t(s)))
      @ iter(some s: migrate_s(s) - migrate_t(s))
      @ mutex(freeze_on - freeze_off, pariter(some s: deploy_s(s) - deploy_t(s)))|}

let () =
  Format.printf "=== Release-train coordination ===@.@.";
  Format.printf "workflow:    %a@." Workflow.pp service_release;
  Format.printf "constraints: %a@.@." Syntax.pp constraints;
  Format.printf "%s@.@." (Classify.describe constraints);

  let mgr = Manager.create constraints in
  let services = [ "auth"; "billing"; "search"; "mail" ] in
  let cases =
    List.map (fun s -> Workflow.start_case service_release ~id:s ~args:[ s ]) services
  in
  let exec case activity =
    let client = Workflow.case_id case in
    let attempt kind action advance =
      if Manager.execute mgr ~client action then begin
        assert (advance ());
        Format.printf "  %-8s %s/%s@." kind client activity;
        true
      end
      else begin
        Format.printf "  BLOCKED  %s/%s (%s)@." client activity kind;
        false
      end
    in
    attempt "start" (Workflow.start_action case activity) (fun () ->
        Workflow.start_activity case activity)
    && attempt "finish" (Workflow.term_action case activity) (fun () ->
           Workflow.finish_activity case activity)
  in
  let case s = List.nth cases (Option.get (List.find_index (String.equal s) services)) in

  (* Everyone builds, stages and verifies — unconstrained, fully parallel. *)
  List.iter
    (fun s -> List.iter (fun a -> ignore (exec (case s) a)) [ "build"; "stage"; "verify" ])
    services;

  Format.printf "@.two deployments fit, the third must wait:@.";
  let start_deploy s =
    let c = case s in
    if Manager.execute mgr ~client:s (Workflow.start_action c "deploy") then begin
      ignore (Workflow.start_activity c "deploy");
      Format.printf "  deploy %s: started@." s;
      true
    end
    else begin
      Format.printf "  deploy %s: denied (capacity or freeze)@." s;
      false
    end
  in
  let finish_deploy s =
    let c = case s in
    ignore (Manager.execute mgr ~client:s (Workflow.term_action c "deploy"));
    ignore (Workflow.finish_activity c "deploy");
    Format.printf "  deploy %s: finished@." s
  in
  ignore (start_deploy "auth");
  ignore (start_deploy "billing");
  ignore (start_deploy "search") (* capacity 2: must wait *);
  finish_deploy "auth";
  ignore (start_deploy "search") (* slot freed *);
  finish_deploy "billing";
  finish_deploy "search";

  Format.printf "@.a freeze window blocks new deployments:@.";
  assert (Manager.execute mgr ~client:"ops" (Syntax.parse_action_exn "freeze_on"));
  Format.printf "  ops: freeze_on@.";
  ignore (start_deploy "mail");
  assert (Manager.execute mgr ~client:"ops" (Syntax.parse_action_exn "freeze_off"));
  Format.printf "  ops: freeze_off@.";
  ignore (start_deploy "mail");
  finish_deploy "mail";

  (* run everything else to completion *)
  List.iter (fun s -> ignore (exec (case s) "announce")) services;
  Format.printf "@.completed releases: %d/%d@."
    (List.length (List.filter Workflow.is_finished cases))
    (List.length cases);
  Format.printf "manager: %a@." Manager.pp_stats (Manager.stats mgr)
