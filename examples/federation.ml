(* Multiple interaction managers (Section 7): the coupling of constraint
   subgraphs with non-overlapping alphabets partitions into independent
   components, each served by its own manager — relieving the single-manager
   bottleneck while enforcing exactly the same combined constraint.

     dune exec examples/federation.exe *)

open Interaction
open Interaction_manager
open Wfms

let () =
  Format.printf "=== Federated interaction managers (Section 7) ===@.@.";
  (* One capacity rule per department, plus an administrative constraint on
     an entirely different alphabet. *)
  let sono = Medical.department_constraint ~exam:"sono" ~capacity:2 in
  let endo = Medical.department_constraint ~exam:"endo" ~capacity:2 in
  let audit = Syntax.parse_exn "(audit_open - audit_close)*" in
  let combined = Expr.sync_list [ sono; endo; audit ] in
  Format.printf "combined constraint:@.  %a@.@." Syntax.pp combined;

  let components = Federation.partition combined in
  Format.printf "partition into %d independent components:@." (List.length components);
  List.iteri (fun i c -> Format.printf "  manager %d: %a@." (i + 1) Syntax.pp c) components;

  let fed = Federation.create combined in
  let exec client action =
    let c = Syntax.parse_action_exn action in
    Format.printf "  %-26s -> %s@." action
      (if Federation.execute fed ~client c then "granted" else "denied")
  in
  Format.printf "@.a busy morning, routed through the federation:@.";
  exec "alice" "call_s(p1,sono)";
  exec "alice" "call_s(p2,sono)";
  exec "alice" "call_s(p3,sono)" (* sono full: capacity 2 *);
  exec "bob" "call_s(p3,endo)" (* endo unaffected *);
  exec "carol" "audit_open";
  exec "alice" "call_t(p1,sono)";
  exec "alice" "perform_s(p1,sono)";
  exec "alice" "perform_t(p1,sono)";
  exec "alice" "call_s(p3,sono)" (* slot freed *);
  exec "carol" "audit_close";

  Format.printf "@.per-manager load (asks handled):@.";
  List.iteri
    (fun i (asks, stats) ->
      Format.printf "  manager %d: %d asks   [%a]@." (i + 1) asks Manager.pp_stats stats)
    (Federation.loads fed);

  (* The federation behaves exactly like one manager on the coupled graph. *)
  Format.printf "@.cross-check against a single manager on the coupling:@.";
  let single = Manager.create combined in
  let script =
    List.map Syntax.parse_action_exn
      [ "call_s(p1,sono)"; "call_s(p2,sono)"; "call_s(p3,sono)"; "call_s(p3,endo)";
        "audit_open"; "call_t(p1,sono)"; "perform_s(p1,sono)"; "perform_t(p1,sono)";
        "call_s(p3,sono)"; "audit_close"
      ]
  in
  let fed2 = Federation.create combined in
  let agreement =
    List.for_all
      (fun c ->
        Federation.execute fed2 ~client:"x" c = Manager.execute single ~client:"x" c)
      script
  in
  Format.printf "  federation ≡ single manager on this run: %b@." agreement;

  (* Whole-federation crash and recovery. *)
  Federation.crash_all fed;
  Federation.recover_all fed;
  Format.printf "@.after crash+recovery, the federation continues:@.";
  exec "bob" "call_t(p3,endo)"
