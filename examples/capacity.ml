(* Capacity restriction for examination departments (Fig. 6): each
   department treats at most three patients simultaneously.  A busy morning
   is simulated: patients stream into two departments; the interaction
   manager admits at most `capacity` concurrent call−perform sequences per
   department and the rest wait their turn.

     dune exec examples/capacity.exe *)

open Interaction
open Interaction_manager
open Wfms

let capacity = 3
let patients = 8

type stage =
  | Waiting
  | Called
  | Performing
  | Done

let () =
  Format.printf "=== Capacity restriction (Fig. 6), capacity %d per department ===@.@."
    capacity;
  let constraints = Medical.capacity_constraint ~capacity () in
  Format.printf "constraint: %a@.@." Syntax.pp constraints;
  Format.printf "graph (DOT): pipe `iexpr dot` or Dot.render for rendering;@.";
  Format.printf "  %d nodes in the graph form@.@."
    (Interaction_graph.Graph.size (Medical.capacity_graph ~capacity ()));
  let mgr = Manager.create constraints in

  (* Every patient visits one department, round-robin over exam kinds. *)
  let kinds = Medical.exam_kinds in
  let agenda =
    List.init patients (fun i ->
        let p = Medical.patient (i + 1) in
        let x = List.nth kinds (i mod List.length kinds) in
        (p, x, ref Waiting))
  in
  let act name p x = Action.conc name [ p; x ] in
  let tick round =
    Format.printf "round %d:@." round;
    List.iter
      (fun (p, x, stage) ->
        let client = p ^ "/" ^ x in
        match !stage with
        | Waiting ->
          if Manager.execute mgr ~client (act "call_s" p x) then (
            stage := Called;
            Format.printf "  %s: patient called@." client)
          else Format.printf "  %s: waiting (department %s at capacity)@." client x
        | Called ->
          assert (Manager.execute mgr ~client (act "call_t" p x));
          assert (Manager.execute mgr ~client (act "perform_s" p x));
          stage := Performing;
          Format.printf "  %s: examination in progress@." client
        | Performing ->
          assert (Manager.execute mgr ~client (act "perform_t" p x));
          stage := Done;
          Format.printf "  %s: finished@." client
        | Done -> ())
      agenda
  in
  let all_done () = List.for_all (fun (_, _, s) -> !s = Done) agenda in
  let round = ref 0 in
  while not (all_done ()) do
    incr round;
    tick !round;
    Format.printf "@."
  done;
  let st = Manager.stats mgr in
  Format.printf "all %d patients treated in %d rounds@." patients !round;
  Format.printf "manager: %a@." Manager.pp_stats st;
  Format.printf "denials observed: %d (each is one busy slot encountered)@."
    st.Manager.denials;
  Format.printf "final state size: %d@." (Manager.state_size mgr);

  (* The same constraint classified by Section 6's criteria. *)
  Format.printf "@.%s@." (Classify.describe constraints)
