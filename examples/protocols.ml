(* Coordination and subscription protocols (Fig. 10) and the two WfMS
   adaptation strategies (Fig. 11), compared head to head on the medical
   ensemble.

     dune exec examples/protocols.exe *)

open Interaction
open Interaction_manager
open Wfms

let () =
  Format.printf "=== Polling vs. subscription (Fig. 10) ===@.@.";
  let e =
    Syntax.parse_exn
      "mutex(go(1) - done(1), go(2) - done(2), go(3) - done(3), go(4) - done(4))"
  in
  let scripts =
    List.map
      (fun i ->
        let v = string_of_int i in
        ( "client" ^ v,
          Syntax.parse_word_exn (Printf.sprintf "go(%s) done(%s) go(%s) done(%s)" v v v v)
        ))
      [ 1; 2; 3; 4 ]
  in
  Format.printf "%-14s %-8s %-10s %-8s %-9s %-9s %-14s@." "strategy" "rounds" "messages"
    "asks" "denials" "informs" "compensations";
  List.iter
    (fun think ->
      Format.printf "-- activity duration: %d rounds@." think;
      List.iter
        (fun (label, strategy) ->
          let r = Protocol.simulate ~think_rounds:think strategy e ~scripts in
          Format.printf "%-14s %-8d %-10d %-8d %-9d %-9d %-14d@." label r.Protocol.rounds
            r.Protocol.messages r.Protocol.asks r.Protocol.denials r.Protocol.informs
            r.Protocol.compensations)
        [ ("polling", Protocol.Polling); ("subscribing", Protocol.Subscribing);
          ("optimistic", Protocol.Optimistic) ])
    [ 0; 4; 16 ];

  Format.printf "@.=== Worklist-handler vs. engine adaptation (Fig. 11) ===@.@.";
  let constraints = Medical.combined_constraint ~capacity:2 () in
  let cases = Medical.ensemble ~patients:3 in
  let run label adaptation rogue crash =
    let o =
      Adapter.run
        { Adapter.default_config with
          adaptation; rogue_handler = rogue; handler_crash_every = crash;
          max_steps = 5000 }
        ~constraints ~cases
    in
    Format.printf "%-28s %a@." label Adapter.pp_outcome o
  in
  run "unadapted" Adapter.Unadapted false None;
  run "adapted worklists" Adapter.Adapted_worklists false None;
  run "  + rogue handler" Adapter.Adapted_worklists true None;
  run "  + handler crashes" Adapter.Adapted_worklists false (Some 7);
  run "adapted engine" Adapter.Adapted_engine false None;
  run "  + rogue requests" Adapter.Adapted_engine true None;
  Format.printf
    "@.Reading: the unadapted WfMS violates the constraints; worklist adaptation@.\
     is correct but pays heavy per-item traffic, leaks through standard handlers@.\
     and stalls the manager when a handler PC dies mid-protocol; engine@.\
     adaptation is waterproof with the least communication (Section 7).@."
