(* A morning in the clinic, end to end: workflow cases for several patients,
   a WfMC-style work-item pool with roles, and an interaction manager
   enforcing the coupled Fig. 7 constraint.  Watch the worklists: items the
   constraint currently forbids show up as SUSPENDED — the introduction's
   "disappear from the worklists or at least become marked as currently not
   executable" — and reappear when the blocking examination completes.

     dune exec examples/hospital_day.exe *)

open Wfms

let role_of = function
  | "order" | "read_report" | "read_short_report" | "read_detailed_report"
  | "write_report" | "write_short_report" | "write_detailed_report" ->
    "physician"
  | "schedule" -> "clerk"
  | _ -> "assistant"

let users =
  [ ("dr_weber", [ "physician" ]); ("front_desk", [ "clerk" ]);
    ("assist_1", [ "assistant" ]); ("assist_2", [ "assistant" ])
  ]

let show_worklists pool =
  List.iter
    (fun (user, _) ->
      let items = Workitem.worklist pool ~user in
      Format.printf "    %-10s: %s@." user
        (if items = [] then "(empty)"
         else
           String.concat ", "
             (List.map (fun i -> Format.asprintf "%a" Workitem.pp_item i) items)))
    users

let lifecycle pool user item =
  match
    ( Workitem.allocate pool ~user item,
      Workitem.start pool ~user item,
      Workitem.complete pool ~user item )
  with
  | Ok (), Ok (), Ok () ->
    Format.printf "  %s completed %s/%s@." user
      (Workflow.case_id item.Workitem.case)
      item.Workitem.activity
  | _ -> Format.printf "  %s could not run %a@." user Workitem.pp_item item

let find pool cid activity =
  List.find_opt
    (fun i ->
      Workflow.case_id i.Workitem.case = cid
      && i.Workitem.activity = activity
      && match i.Workitem.status with
         | Workitem.Offered | Workitem.Suspended -> true
         | _ -> false)
    (Workitem.items pool)

let () =
  Format.printf "=== A morning in the clinic (work items + Fig. 7 constraint) ===@.@.";
  let constraints = Medical.combined_constraint ~capacity:3 () in
  let mgr = Interaction_manager.Manager.create constraints in
  let cases =
    List.map
      (fun (wf, id, args) -> Workflow.start_case wf ~id ~args)
      (Medical.ensemble ~patients:1)
  in
  let pool = Workitem.create ~manager:mgr ~users ~role_of cases in

  Format.printf "initial worklists:@.";
  show_worklists pool;

  (* Run both cases up to the point where the patient can be called. *)
  let run cid activity user =
    match find pool cid activity with
    | Some item -> lifecycle pool user item
    | None -> Format.printf "  (%s/%s not offered)@." cid activity
  in
  Format.printf "@.the preparation phase:@.";
  run "p1-sono" "order" "dr_weber";
  run "p1-endo" "order" "dr_weber";
  run "p1-sono" "schedule" "front_desk";
  run "p1-endo" "schedule" "front_desk";
  run "p1-sono" "prepare" "assist_1";
  run "p1-endo" "inform" "assist_2";
  run "p1-endo" "prepare" "assist_2";

  Workitem.refresh pool;
  Format.printf "@.both departments may call the patient now:@.";
  show_worklists pool;

  (* The sono assistant starts the call; the endo call becomes SUSPENDED. *)
  (match find pool "p1-sono" "call" with
  | Some item ->
    ignore (Workitem.allocate pool ~user:"assist_1" item);
    ignore (Workitem.start pool ~user:"assist_1" item);
    Workitem.refresh pool;
    Format.printf "@.assist_1 is calling the patient for the ultrasonography:@.";
    show_worklists pool;
    (match find pool "p1-endo" "call" with
    | Some endo_call ->
      Format.printf "@.  endoscopy's call is now: %s@."
        (Workitem.status_to_string endo_call.Workitem.status)
    | None -> ());
    ignore (Workitem.complete pool ~user:"assist_1" item)
  | None -> ());
  run "p1-sono" "perform" "assist_1";

  Workitem.refresh pool;
  Format.printf "@.ultrasonography done — the endoscopy call is offered again:@.";
  (match find pool "p1-endo" "call" with
  | Some endo_call ->
    Format.printf "  endoscopy's call is now: %s@."
      (Workitem.status_to_string endo_call.Workitem.status)
  | None -> ());

  (* Finish everything. *)
  Format.printf "@.the rest of the day:@.";
  run "p1-sono" "write_report" "dr_weber";
  run "p1-sono" "read_report" "dr_weber";
  run "p1-endo" "call" "assist_2";
  run "p1-endo" "perform" "assist_2";
  run "p1-endo" "write_short_report" "dr_weber";
  run "p1-endo" "read_short_report" "dr_weber";
  run "p1-endo" "write_detailed_report" "dr_weber";
  run "p1-endo" "read_detailed_report" "dr_weber";

  Format.printf "@.cases finished: %d/%d; work-item transitions: %d@."
    (List.length (List.filter Workflow.is_finished cases))
    (List.length cases) (Workitem.clock pool);
  Format.printf "manager: %a@." Interaction_manager.Manager.pp_stats
    (Interaction_manager.Manager.stats mgr)
