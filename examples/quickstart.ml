(* Quickstart: build an interaction expression, solve the word problem, and
   run the action problem (Fig. 9 of the paper).

     dune exec examples/quickstart.exe *)

open Interaction

let () =
  (* An expression can be parsed from the concrete syntax ... *)
  let parsed = Syntax.parse_exn "some x: (request(x) - reply(x))*" in

  (* ... or built with the combinators; both denote the same thing. *)
  let built =
    Expr.(
      some_q "x"
        (seq_iter
           (seq
              (atom "request" [ Action.param "x" ])
              (atom "reply" [ Action.param "x" ]))))
  in
  assert (Expr.equal parsed built);
  Format.printf "expression: %a@.@." Syntax.pp parsed;

  (* The word problem: classify whole action sequences. *)
  let check s =
    let w = Syntax.parse_word_exn s in
    Format.printf "  %-34s -> %a@." s Semantics.pp_verdict (Engine.word parsed w)
  in
  Format.printf "word problem:@.";
  check "request(1) reply(1)";
  check "request(1)";
  check "request(1) reply(2)";
  check "request(7) reply(7) request(7) reply(7)";

  (* The action problem: accept or reject one action at a time.  This is
     what an interaction manager does to synchronize running workflows. *)
  Format.printf "@.action problem:@.";
  let session = Engine.create parsed in
  List.iter
    (fun s ->
      let a = Syntax.parse_action_exn s in
      Format.printf "  %-12s %s@." s
        (if Engine.try_action session a then "Accept." else "Reject."))
    [ "request(1)"; "request(2)"; "reply(1)"; "reply(1)"; "request(1)" ];

  (* Complexity: the paper's Section 6 criteria, available as an analysis. *)
  Format.printf "@.classification:@.%s@." (Classify.describe parsed)
