(* Interaction expressions as a general synchronization formalism: the
   classic conditions of concurrent programming (Section 1 traces the
   formalism's ancestry to path/synchronization/flow expressions for
   parallel programs), including dining-philosophers deadlock detection as
   a dead-end analysis.

     dune exec examples/concurrency.exe *)

open Interaction
open Sync_patterns

let try_all e actions =
  let s = Engine.create e in
  List.iter
    (fun a ->
      let c = Syntax.parse_action_exn a in
      Format.printf "  %-14s %s@." a
        (if Engine.try_action s c then "Accept." else "Reject."))
    actions

let () =
  Format.printf "=== Readers–writers ===@.";
  let rw = Patterns.readers_writers () in
  Format.printf "constraint: %a@." Syntax.pp rw;
  try_all rw
    [ "read_s(r1)"; "read_s(r2)" (* concurrent readers *); "write_s(w)" (* blocked *);
      "read_t(r1)"; "read_t(r2)"; "write_s(w)" (* now exclusive *); "read_s(r3)"
      (* blocked *); "write_t(w)"; "read_s(r3)"
    ];

  Format.printf "@.=== Bounded buffer (capacity 2) ===@.";
  let pc = Patterns.producers_consumers ~capacity:2 in
  try_all pc
    [ "produce(a)"; "produce(b)"; "produce(c)" (* over capacity *); "consume(b)";
      "produce(c)"; "consume(q)" (* never produced *); "consume(a)"; "consume(c)"
    ];

  Format.printf "@.=== Cyclic barrier (3 parties) ===@.";
  try_all (Patterns.barrier ~parties:3)
    [ "arrive(1)"; "leave(1)" (* too early *); "arrive(2)"; "arrive(3)"; "leave(2)";
      "leave(1)"; "leave(3)"; "arrive(1)"
    ];

  Format.printf "@.=== Dining philosophers: deadlock as a dead end ===@.";
  let check label e =
    let t0 = Sys.time () in
    let r = Language.explore ~max_states:200_000 e in
    Format.printf "  %-22s %a  -> %s  (%.2fs)@." label Language.pp_exploration r
      (if r.Language.truncated then "unknown"
       else if r.Language.dead_states > 0 then "DEADLOCK possible"
       else "deadlock-free")
      (Sys.time () -. t0)
  in
  check "3 symmetric" (Patterns.philosophers 3);
  check "3 with one lefty" (Patterns.philosophers ~lefty_first:true 3);

  Format.printf "@.the deadlocking history, step by step:@.";
  let e2 = Patterns.philosophers 2 in
  let s = Engine.create e2 in
  List.iter
    (fun a -> ignore (Engine.try_action s (Syntax.parse_action_exn a)))
    [ "take(0,0)"; "take(1,1)" ];
  Format.printf "  after take(0,0) take(1,1): state alive=%b, final=%b,@."
    (Engine.is_alive s) (Engine.is_final s);
  let alphabet = Language.concrete_alphabet e2 in
  let moves = List.filter (Engine.permitted s) alphabet in
  Format.printf "  permitted continuations: %d — a dead end (Section 3)@."
    (List.length moves);

  Format.printf "@.=== Audit: a recorded schedule against the constraint ===@.";
  let log =
    Syntax.parse_word_exn
      "read_s(r1) read_s(r2) write_s(w) read_t(r1) read_t(r2) write_t(w)"
  in
  let report = Audit.check rw log in
  Format.printf "  %a@." Audit.pp_report report
