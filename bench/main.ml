(* Benchmark harness regenerating every evaluation artifact of the paper
   (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
   paper-vs-measured record).

     dune exec bench/main.exe            -- all tables (E1..E22)
     dune exec bench/main.exe e3 e4      -- selected tables
     dune exec bench/main.exe smoke      -- quick CI subset + telemetry trace
     dune exec bench/main.exe -- smoke --domains 2
                                         -- smoke + parallel-vs-sequential
                                            oracle check (exit 1 on mismatch)
     dune exec bench/main.exe -- smoke --engine vm
                                         -- smoke with a pinned engine
                                            (interp | table | vm | auto)
     dune exec bench/main.exe bechamel   -- bechamel micro-benchmarks
     dune exec bench/main.exe crash-smoke
                                         -- kill–replay–verify: cut the WAL
                                            at every boundary, recover, and
                                            check against the prefix oracle
                                            (exit 1 on divergence)

   Every run also writes BENCH_pr9.json: the machine-readable per-experiment
   numbers (ns/op, transitions/action, cache hit rates, multicore scaling)
   that accumulate the perf trajectory across PRs.  The file is
   deterministic (sorted keys) and self-describing (schema version plus
   host metadata; every section carries its own _cores/_domains_flag so
   multicore rows are interpretable in isolation), so runs on different
   machines stay comparable. *)

open Interaction
open Interaction_exec
open Wfms

let pf = Format.printf
let line () = pf "%s@." (String.make 78 '-')

let header id title claim =
  pf "@.";
  line ();
  pf "%s — %s@." id title;
  pf "paper: %s@." claim;
  line ()

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

(* Wall-clock variant for the multicore rows: [Sys.time] is CPU time summed
   over every domain, which cancels out exactly the speedup being measured. *)
let wtime f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Steady-state protocol shared by the multicore experiments (E17, E21):
   one untimed warmup populates whatever memo tables the configuration
   touches, then the best of a few wall-clock repetitions on identical
   fresh instances is kept — the hot path is sub-millisecond for a whole
   batch, so a single sample is at the mercy of the scheduler. *)
let steady ~mk ~run =
  ignore (run (mk ()));
  let best = ref infinity in
  for _ = 1 to 9 do
    let inst = mk () in
    Gc.full_major ();
    let (), dt = wtime (fun () -> run inst) in
    if dt < !best then best := dt
  done;
  !best

let act name args = Action.conc name args

(* --- machine-readable results ------------------------------------------- *)

(* Keyed measurements accumulated while the human tables print, grouped by
   experiment, in insertion order. *)
let bench_records : (string * (string * float) list ref) list ref = ref []

let record exp key v =
  let kvs =
    match List.assoc_opt exp !bench_records with
    | Some r -> r
    | None ->
      let r = ref [] in
      bench_records := !bench_records @ [ (exp, r) ];
      r
  in
  kvs := !kvs @ [ (key, v) ]

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* Deterministic and self-describing: groups and keys are emitted sorted, and
   a leading "_meta" object records the schema version plus enough host
   context (core count, domain flag, OCaml version, hostname) to interpret
   the multicore numbers.  Same measurements => byte-identical file. *)
let bench_schema_version = 10

let write_bench_json ~domains file =
  let meta =
    [ ("cores", string_of_int (Domain.recommended_domain_count ()));
      ("domains_flag", string_of_int domains);
      ("hostname", Printf.sprintf "%S" (Unix.gethostname ()));
      ("ocaml_version", Printf.sprintf "%S" Sys.ocaml_version);
      ("schema", "\"interaction-bench\"");
      ("schema_version", string_of_int bench_schema_version) ]
  in
  (* schema 9: every section repeats the host core count and the --domains
     flag it ran under, so a multicore row pasted out of the file still
     states the hardware it came from.  Schema 10 adds the e22 section
     (lock-site contention, GC deltas, speculation time split); the full
     schema history lives in docs/PERFORMANCE.md *)
  let section_meta =
    [ ("_cores", float_of_int (Domain.recommended_domain_count ()));
      ("_domains_flag", float_of_int domains) ]
  in
  let groups =
    List.map
      (fun (exp, kvs) ->
        (exp, List.sort (fun (a, _) (b, _) -> compare a b) (section_meta @ !kvs)))
      !bench_records
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"_meta\": {";
  List.iteri
    (fun j (k, v) ->
      if j > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%S: %s" k v)
    meta;
  Buffer.add_string b "}";
  List.iter
    (fun (exp, kvs) ->
      Buffer.add_string b ",\n";
      Printf.bprintf b "  %S: {" exp;
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string b ", ";
          Printf.bprintf b "%S: %s" k (json_number v))
        kvs;
      Buffer.add_string b "}")
    groups;
  Buffer.add_string b "\n}\n";
  Out_channel.with_open_text file (fun oc -> Buffer.output_buffer oc b)

let record_cache_stats () =
  let cs = State.cache_stats () in
  let ah, am = Alpha.cache_stats () in
  let sh, sm = Engine.successor_cache_stats () in
  let rate h m = if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m) in
  let f = float_of_int in
  record "caches" "state_init_hits" (f cs.State.init_hits);
  record "caches" "state_init_misses" (f cs.State.init_misses);
  record "caches" "state_subst_hits" (f cs.State.subst_hits);
  record "caches" "state_subst_misses" (f cs.State.subst_misses);
  record "caches" "state_trans_hits" (f cs.State.trans_hits);
  record "caches" "state_trans_misses" (f cs.State.trans_misses);
  record "caches" "state_trans_hit_rate" (rate cs.State.trans_hits cs.State.trans_misses);
  record "caches" "state_subst_hit_rate" (rate cs.State.subst_hits cs.State.subst_misses);
  record "caches" "alpha_hits" (f ah);
  record "caches" "alpha_misses" (f am);
  record "caches" "alpha_hit_rate" (rate ah am);
  record "caches" "engine_successor_hits" (f sh);
  record "caches" "engine_successor_misses" (f sm);
  record "caches" "engine_successor_hit_rate" (rate sh sm);
  record "caches" "state_transitions_total" (f (State.transitions ()));
  record "caches" "state_live_states" (f (State.live_states ()));
  record "caches" "state_memo_evictions" (f (State.memo_eviction_count ()));
  let au = Automaton.stats () in
  record "caches" "automaton_steps" (f au.Automaton.steps);
  record "caches" "automaton_fallbacks" (f au.Automaton.fallbacks);
  record "caches" "automaton_interned_states" (f au.Automaton.interned_states);
  record "caches" "automaton_sig_cache_hit_rate"
    (rate au.Automaton.sig_cache_hits au.Automaton.sig_cache_misses)

(* ------------------------------------------------------------------ E1 *)

let e1_expr = Syntax.parse_exn "((a - b)* || (c | d)*) @ (e - f)*"
let e1_script = [ "a"; "c"; "e"; "b"; "d"; "f"; "a"; "b"; "c"; "d" ]

let e1 () =
  header "E1" "quasi-regular expressions are harmless (Section 6)"
    "state size and transition cost stay constant in the sequence length";
  pf "expression: %a@." Syntax.pp e1_expr;
  pf "%s@.@." (Classify.describe e1_expr);
  pf "%10s %12s %16s@." "actions" "state size" "ns/transition";
  List.iter
    (fun n ->
      let s = Engine.create e1_expr in
      Gc.full_major ();
      let (), dt =
        time (fun () ->
          for i = 0 to n - 1 do
            let a = act (List.nth e1_script (i mod List.length e1_script)) [] in
            assert (Engine.try_action s a)
          done)
      in
      let ns = dt *. 1e9 /. float_of_int n in
      record "e1" (Printf.sprintf "ns_per_action_n%d" n) ns;
      pf "%10d %12d %16.0f@." n (Engine.state_size s) ns)
    [ 100; 200; 400; 800; 1600; 3200 ]

(* ------------------------------------------------------------------ E2 *)

let e2_feed_patients e n =
  (* Every patient is prepared and then left in the middle of an
     examination, so the state must track all n instances. *)
  let s = Engine.create e in
  for i = 1 to n do
    let p = Medical.patient i in
    List.iter
      (fun a -> assert (Engine.try_action s (act a [ p; "sono" ])))
      [ "prepare_s"; "prepare_t"; "call_s" ]
  done;
  s

let e2 () =
  header "E2" "completely and uniformly quantified expressions are benign (Section 6)"
    "state size grows polynomially (degree rarely above 1 or 2)";
  let e = Medical.patient_constraint in
  pf "expression: Fig. 3 patient constraint@.%s@.@." (Classify.describe e);
  pf "%10s %12s %12s %14s %14s@." "patients" "actions" "state size" "cold ns/act"
    "repeat ns/act";
  (* untimed warmup, replicating the row protocol: pay one-time process
     costs (expression analysis, first instance) before the first row *)
  Gc.full_major ();
  ignore (e2_feed_patients e 1);
  List.iter
    (fun n ->
      (* collect garbage left over from previous rows outside the timed
         region, so a row measures its own feed and not inherited GC debt *)
      Gc.full_major ();
      let s, dt = time (fun () -> e2_feed_patients e n) in
      (* a second, identical session: every state recurs, so the hash-consed
         engine replays it from the transition memo *)
      Gc.full_major ();
      let _, dt2 = time (fun () -> e2_feed_patients e n) in
      let cold = dt *. 1e9 /. float_of_int (3 * n) in
      let repeat = dt2 *. 1e9 /. float_of_int (3 * n) in
      record "e2" (Printf.sprintf "ns_cold_n%d" n) cold;
      record "e2" (Printf.sprintf "ns_repeat_n%d" n) repeat;
      pf "%10d %12d %12d %14.0f %14.0f@." n (3 * n) (Engine.state_size s) cold repeat)
    [ 1; 2; 4; 8; 16; 32; 64 ];
  pf "@.(measured growth is linear in the touched patients — well within the benign bound)@."

(* ------------------------------------------------------------------ E3 *)

let e3_expr = Syntax.parse_exn "all p: (a(p) - b - c(p))"

let e3 () =
  header "E3" "malignant expressions exist and must be selectively constructed (Section 6)"
    "a non-uniform quantifier makes state size explode exponentially";
  pf "expression: %a@." Syntax.pp e3_expr;
  pf "%s@.@." (Classify.describe e3_expr);
  pf "%6s %14s %14s %12s@." "n" "size after aⁿ" "size after bⁿᐟ²" "seconds";
  List.iter
    (fun n ->
      let (sz_a, sz_b), dt =
        time (fun () ->
          let s = Engine.create e3_expr in
          for i = 1 to n do
            assert (Engine.try_action s (act "a" [ string_of_int i ]))
          done;
          let sz_a = Engine.state_size s in
          for _ = 1 to n / 2 do
            assert (Engine.try_action s (act "b" []))
          done;
          (sz_a, Engine.state_size s))
      in
      record "e3" (Printf.sprintf "seconds_n%d" n) dt;
      pf "%6d %14d %14d %12.3f@." n sz_a sz_b dt)
    [ 2; 4; 6; 8; 10; 12 ];
  pf "@.(the word aⁿbⁿᐟ² leaves C(n, n/2) alternatives: exponential in n)@."

(* ------------------------------------------------------------------ E4 *)

let e4_expr = Syntax.parse_exn "(a - b)* || (b - a)*"

let e4_word n =
  List.concat (List.init n (fun i -> if i mod 2 = 0 then [ act "a" []; act "b" [] ] else [ act "b" []; act "a" [] ]))

let e4 () =
  header "E4" "the naive word-problem algorithm is hopelessly inefficient (Section 4)"
    "direct evaluation of Table 8 is exponential; the state model is not";
  pf "expression: %a@." Syntax.pp e4_expr;
  pf "@.%8s %16s %16s %12s@." "|word|" "naive (s)" "state model (s)" "ratio";
  let continue = ref true in
  List.iter
    (fun n ->
      if !continue then begin
        let w = e4_word n in
        let v1, t_naive = time (fun () -> Semantics.word e4_expr w) in
        let v2, t_op = time (fun () -> Engine.word e4_expr w) in
        assert (v1 = v2);
        pf "%8d %16.4f %16.6f %12.0f@." (List.length w) t_naive t_op
          (t_naive /. max 1e-9 t_op);
        if t_naive > 3.0 then continue := false
      end)
    [ 2; 3; 4; 5; 6; 7; 8; 9 ]

(* ------------------------------------------------------------------ E5 *)

let e5 () =
  header "E5" "the word() and action() functions (Section 5, Fig. 9)"
    "word() returns 2/1/0 for complete/partial/illegal; action() accepts or rejects";
  let e = Syntax.parse_exn "some x: (a(x) - b(x))*" in
  pf "expression: %a@.@." Syntax.pp e;
  pf "word():@.";
  List.iter
    (fun s ->
      let w = Syntax.parse_word_exn s in
      pf "  word(x, %-28s) = %d (%a)@." (if s = "" then "<empty>" else s)
        (Engine.word_int e w) Semantics.pp_verdict (Engine.word e w))
    [ ""; "a(1)"; "a(1) b(1)"; "a(1) b(2)"; "a(1) b(1) a(1) b(1)"; "b(1)" ];
  pf "@.action():@.";
  let s = Engine.create e in
  List.iter
    (fun a ->
      let c = Syntax.parse_action_exn a in
      pf "  %-8s -> %s@." a (if Engine.try_action s c then "Accept." else "Reject."))
    [ "a(1)"; "a(2)"; "b(2)"; "b(1)"; "a(1)"; "b(1)" ]

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  header "E6" "the combined constraint on a dynamic ensemble (Figs. 3, 6, 7)"
    "coupled subgraphs enforce both constraints; benign in ensemble size";
  let constraints = Medical.combined_constraint ~capacity:3 () in
  pf "%s@.@." (Classify.describe constraints);
  pf "%10s %8s %10s %10s %12s %12s %10s@." "patients" "cases" "executed" "denials"
    "messages" "state size" "seconds";
  List.iter
    (fun n ->
      let cases = Medical.ensemble ~patients:n in
      let o, dt =
        time (fun () ->
          Adapter.run
            { Adapter.default_config with max_steps = 100_000 }
            ~constraints ~cases)
      in
      pf "%10d %8d %10d %10d %12d %12d %10.3f@." n (List.length cases)
        o.Adapter.executed o.Adapter.denials o.Adapter.messages
        o.Adapter.manager_state_size dt;
      assert (o.Adapter.violations = 0);
      assert (o.Adapter.completed_cases = List.length cases))
    [ 1; 2; 4; 8; 16 ];
  pf "@.(zero violations everywhere; all cases complete)@."

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  header "E7" "coordination vs. subscription protocol (Fig. 10)"
    "subscription avoids busy waiting: message volume independent of activity duration";
  let e =
    Syntax.parse_exn
      "mutex(go(1) - done(1), go(2) - done(2), go(3) - done(3), go(4) - done(4))"
  in
  let scripts =
    List.map
      (fun i ->
        let v = string_of_int i in
        ( "client" ^ v,
          Syntax.parse_word_exn
            (Printf.sprintf "go(%s) done(%s) go(%s) done(%s)" v v v v) ))
      [ 1; 2; 3; 4 ]
  in
  pf "%12s %18s %18s %8s@." "duration" "polling msgs" "subscribing msgs" "ratio";
  List.iter
    (fun think ->
      let p = Interaction_manager.Protocol.simulate ~think_rounds:think
                Interaction_manager.Protocol.Polling e ~scripts in
      let s = Interaction_manager.Protocol.simulate ~think_rounds:think
                Interaction_manager.Protocol.Subscribing e ~scripts in
      assert (p.Interaction_manager.Protocol.completed
              && s.Interaction_manager.Protocol.completed);
      pf "%12d %18d %18d %8.2f@." think p.Interaction_manager.Protocol.messages
        s.Interaction_manager.Protocol.messages
        (float_of_int p.Interaction_manager.Protocol.messages
        /. float_of_int s.Interaction_manager.Protocol.messages))
    [ 0; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ E8 *)

let e8 () =
  header "E8" "worklist-handler vs. workflow-engine adaptation (Fig. 11)"
    "worklist adaptation: chatty, not waterproof, stalls on handler crashes; engine adaptation: lean and waterproof";
  let constraints = Medical.combined_constraint ~capacity:2 () in
  let cases = Medical.ensemble ~patients:3 in
  let run label adaptation rogue crash =
    let o =
      Adapter.run
        { Adapter.default_config with
          adaptation; rogue_handler = rogue; handler_crash_every = crash;
          max_steps = 10_000 }
        ~constraints ~cases
    in
    pf "%-26s %10d %10d %10d %9d %9d@." label o.Adapter.executed o.Adapter.messages
      o.Adapter.violations o.Adapter.denials o.Adapter.manager_timeouts
  in
  pf "%-26s %10s %10s %10s %9s %9s@." "configuration" "executed" "messages"
    "violations" "denials" "timeouts";
  run "unadapted" Adapter.Unadapted false None;
  run "adapted worklists" Adapter.Adapted_worklists false None;
  run "  + rogue handler" Adapter.Adapted_worklists true None;
  run "  + handler crashes" Adapter.Adapted_worklists false (Some 7);
  run "adapted engine" Adapter.Adapted_engine false None;
  run "  + rogue requests" Adapter.Adapted_engine true None

(* ------------------------------------------------------------------ E9 *)

let e9 () =
  header "E9" "expressiveness beyond regular languages (Section 3)"
    "Φ(x) = {aⁿbⁿcⁿ | n ≥ 0} is accepted, a language that is not context-free";
  let e = Syntax.parse_exn "(a - b - c)# & (a* - b* - c*)" in
  pf "expression: %a@.@." Syntax.pp e;
  pf "%4s %18s %22s %22s@." "n" "aⁿbⁿcⁿ" "aⁿbⁿcⁿ⁻¹" "aⁿbⁿ⁺¹cⁿ";
  List.iter
    (fun n ->
      let mk na nb nc =
        List.init na (fun _ -> act "a" [])
        @ List.init nb (fun _ -> act "b" [])
        @ List.init nc (fun _ -> act "c" [])
      in
      let v w = Format.asprintf "%a" Semantics.pp_verdict (Engine.word e w) in
      pf "%4d %18s %22s %22s@." n
        (v (mk n n n))
        (if n > 0 then v (mk n n (n - 1)) else "-")
        (v (mk n (n + 1) n)))
    [ 0; 1; 2; 3; 4; 5; 6 ];
  let universe = [ act "a" []; act "b" []; act "c" [] ] in
  let lang = Semantics.language ~max_len:9 ~universe e in
  pf "@.all complete words up to length 9: %s@."
    (String.concat ", "
       (List.map
          (fun w ->
            if w = [] then "ε"
            else String.concat "" (List.map (fun c -> c.Action.cname) w))
          lang))

(* ------------------------------------------------------------------ E10 *)

let e10 () =
  header "E10" "federated interaction managers (Section 7)"
    "alphabet-disjoint constraint components can be served by independent managers";
  let departments = [ "sono"; "endo"; "radio"; "cardio" ] in
  let combined =
    Interaction.Expr.sync_list
      (List.map (fun x -> Medical.department_constraint ~exam:x ~capacity:2) departments)
  in
  let components = Interaction_manager.Federation.partition combined in
  pf "constraint: coupling of %d per-department capacity rules@." (List.length departments);
  pf "partition:  %d independent managers@.@." (List.length components);
  let fed = Interaction_manager.Federation.create combined in
  let single = Interaction_manager.Manager.create combined in
  let workload =
    List.concat
      (List.init 12 (fun i ->
           let p = Medical.patient (i + 1) in
           let x = List.nth departments (i mod List.length departments) in
           [ act "call_s" [ p; x ]; act "call_t" [ p; x ]; act "perform_s" [ p; x ];
             act "perform_t" [ p; x ]
           ]))
  in
  let agree = ref true in
  let (), t_fed =
    time (fun () ->
      List.iter
        (fun c ->
          ignore (Interaction_manager.Federation.execute fed ~client:"w" c))
        workload)
  in
  let (), t_single =
    time (fun () ->
      List.iter
        (fun c -> ignore (Interaction_manager.Manager.execute single ~client:"w" c))
        workload)
  in
  (* agreement check on a fresh pair *)
  let fed2 = Interaction_manager.Federation.create combined in
  let single2 = Interaction_manager.Manager.create combined in
  List.iter
    (fun c ->
      if
        Interaction_manager.Federation.execute fed2 ~client:"w" c
        <> Interaction_manager.Manager.execute single2 ~client:"w" c
      then agree := false)
    workload;
  pf "%12s %14s %16s@." "deployment" "seconds" "max asks/manager";
  let max_load =
    List.fold_left max 0 (List.map fst (Interaction_manager.Federation.loads fed))
  in
  pf "%12s %14.4f %16d@." "federated" t_fed max_load;
  pf "%12s %14.4f %16d@." "single" t_single
    (Interaction_manager.Manager.stats single).Interaction_manager.Manager.asks;
  pf "@.federation ≡ single manager on the workload: %b@." !agree;
  pf "(the per-manager bottleneck shrinks by the number of components)@."

(* ------------------------------------------------------------------ E11 *)

let e11 () =
  header "E11" "ablation: state canonicalization (part of the optimizer rho)"
    "without merging equal alternatives, state size balloons even for benign expressions";
  let e = Syntax.parse_exn "(a | a | a) * || (a | a) *" in
  pf "expression: %a@.@." Syntax.pp e;
  pf "%10s %22s %22s@." "actions" "canonicalized size" "raw size";
  List.iter
    (fun n ->
      let run () =
        let s = Engine.create e in
        for _ = 1 to n do
          assert (Engine.try_action s (act "a" []))
        done;
        Engine.state_size s
      in
      let with_canon = run () in
      State.set_canonicalization false;
      let without =
        Fun.protect ~finally:(fun () -> State.set_canonicalization true) run
      in
      pf "%10d %22d %22d@." n with_canon without)
    [ 1; 2; 4; 6; 8; 10; 12 ];
  pf "@.(duplicate alternatives grow exponentially once merging is disabled)@."

(* ------------------------------------------------------------------ E12 *)

let e12 () =
  header "E12" "ablation: algebraic simplification before deployment"
    "normalizing the constraint shrinks the expression and every state derived from it";
  let redundant =
    Syntax.parse_exn
      "((a - b) | (a - b))* @ ((c | c | eps) - d)* @ (some q: (a - b) | (a - b))*"
  in
  let simplified = Rewrite.simplify redundant in
  pf "original:   %a  (%d nodes)@." Syntax.pp redundant (Expr.size redundant);
  pf "simplified: %a  (%d nodes)@.@." Syntax.pp simplified (Expr.size simplified);
  (match Language.equivalent redundant simplified with
  | Some b -> pf "equivalence check: %b@.@." b
  | None -> pf "equivalence check: unknown (bound hit)@.@.");
  pf "%10s %18s %18s@." "actions" "original size" "simplified size";
  let word n =
    List.concat (List.init n (fun i -> if i mod 2 = 0 then [ act "a" []; act "b" [] ] else [ act "c" []; act "d" [] ]))
  in
  List.iter
    (fun n ->
      let size_of e =
        match State.trans_word (State.init e) (word n) with
        | Some s -> State.size s
        | None -> -1
      in
      pf "%10d %18d %18d@." (2 * n) (size_of redundant) (size_of simplified))
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ E13 *)

let e13 () =
  header "E13" "dead-end detection on classic synchronization conditions (Section 3)"
    "misused graphs have partial words that can never complete; the dining-philosophers deadlock is one";
  let module P = Sync_patterns.Patterns in
  pf "%-28s %10s %8s %8s %14s %10s@." "system" "states" "final" "dead" "verdict" "seconds";
  let check ?(max_states = 200_000) ?(max_state_size = 10_000) label e =
    let r, dt =
      time (fun () -> Language.explore ~max_states ~max_state_size e)
    in
    pf "%-28s %10d %8d %8d %14s %10.2f@." label r.Language.states r.Language.final_states
      r.Language.dead_states
      (if r.Language.truncated then
         if r.Language.dead_states > 0 then "dead end" else "unknown"
       else if r.Language.dead_states > 0 then "dead end"
       else "sound")
      dt
  in
  check "philosophers n=2" (P.philosophers 2);
  check "philosophers n=2, lefty" (P.philosophers ~lefty_first:true 2);
  check "philosophers n=3" (P.philosophers 3);
  check "philosophers n=3, lefty" (P.philosophers ~lefty_first:true 3);
  (* readers–writers admits unboundedly many concurrent readers: its state
     space is infinite, so only a bounded (truncated) exploration is shown *)
  check ~max_states:2_000 ~max_state_size:400 "readers-writers (bounded)"
    (P.readers_writers ());
  check "barrier, 3 parties" (P.barrier ~parties:3);
  check "misused conjunction" (Syntax.parse_exn "(a - b) & (b - a)")

(* ------------------------------------------------------------------ E14 *)

let e14 () =
  header "E14" "recovery strategies of the interaction manager (Section 7)"
    "checkpointing bounds recovery work; full log replay grows with history length";
  let constraints = Medical.patient_constraint in
  pf "%12s %18s %22s@." "log length" "full replay (s)" "from checkpoint (s)";
  List.iter
    (fun n ->
      let mgr = Interaction_manager.Manager.create constraints in
      for i = 1 to n do
        let p = Medical.patient (i mod 40) in
        let x = if i mod 2 = 0 then "sono" else "endo" in
        let acts =
          [ act "call_s" [ p; x ]; act "call_t" [ p; x ]; act "perform_s" [ p; x ];
            act "perform_t" [ p; x ]
          ]
        in
        List.iter
          (fun c -> ignore (Interaction_manager.Manager.execute mgr ~client:"w" c))
          acts
      done;
      let cp = Interaction_manager.Manager.checkpoint mgr in
      let (), t_full =
        time (fun () ->
          Interaction_manager.Manager.crash mgr;
          Interaction_manager.Manager.recover mgr)
      in
      let (), t_cp =
        time (fun () ->
          Interaction_manager.Manager.crash mgr;
          Interaction_manager.Manager.recover_with mgr ~checkpoint:cp)
      in
      pf "%12d %18.4f %22.6f@."
        (List.length (Interaction_manager.Manager.confirmed_log mgr))
        t_full t_cp)
    [ 50; 100; 200; 400; 800 ]

(* ------------------------------------------------------------------ E15 *)

let e15 () =
  header "E15" "compilation to explicit finite automata (Section 4's FSM comparison)"
    "finite-state expressions can be tabulated once; transitions become array lookups";
  let cases =
    [ ("(a - b)* || (c | d)*", "a c b d");
      ("mutex(a - b, c - d)", "a b c d");
      ("(a - b)* @ (c - b)*", "a c b a c b")
    ]
  in
  pf "%-26s %8s %10s %18s %18s %8s@." "expression" "states" "alphabet"
    "interpreted ns/act" "compiled ns/act" "speedup";
  List.iteri
    (fun i (src, script) ->
      let e = Syntax.parse_exn src in
      let word = Syntax.parse_word_exn script in
      let reps = 3000 in
      match Compile.compile e with
      | None -> pf "%-26s %8s@." src "(infinite)"
      | Some dfa ->
        let (), t_interp =
          time (fun () ->
            for _ = 1 to reps do
              let s = Engine.create e in
              List.iter (fun a -> ignore (Engine.try_action s a)) word
            done)
        in
        let (), t_dfa =
          time (fun () ->
            for _ = 1 to reps do
              let r = Compile.start dfa in
              List.iter (fun a -> ignore (Compile.step r a)) word
            done)
        in
        let per t = t *. 1e9 /. float_of_int (reps * List.length word) in
        record "e15" (Printf.sprintf "interpreted_ns_case%d" (i + 1)) (per t_interp);
        record "e15" (Printf.sprintf "compiled_ns_case%d" (i + 1)) (per t_dfa);
        record "e15" (Printf.sprintf "speedup_case%d" (i + 1))
          (t_interp /. max 1e-9 t_dfa);
        pf "%-26s %8d %10d %18.0f %18.0f %7.1fx@." src (Compile.state_count dfa)
          (List.length (Compile.alphabet dfa))
          (per t_interp) (per t_dfa)
          (t_interp /. max 1e-9 t_dfa))
    cases;
  pf "@.(compilation is exact for the enumerated value set; infinite spaces stay interpreted)@."

(* ------------------------------------------------------------------ E16 *)

let e16 () =
  header "E16" "ablation: hash-consed states — memo caches and transition reuse"
    "canonical representation gives O(1) equality; the grant loop commits a cached successor";
  (* part 1: E1/E2 transition throughput with and without the memo caches
     (init per subexpression, parameter substitution, alphabet extraction) *)
  pf "%-36s %18s %18s@." "workload" "memo on (ns/act)" "memo off (ns/act)";
  let run_e1 () =
    let n = 3200 in
    let s = Engine.create e1_expr in
    let (), dt =
      time (fun () ->
        for i = 0 to n - 1 do
          let a = act (List.nth e1_script (i mod List.length e1_script)) [] in
          assert (Engine.try_action s a)
        done)
    in
    dt *. 1e9 /. float_of_int n
  in
  let run_e2 () =
    let n = 32 in
    let _, dt = time (fun () -> e2_feed_patients Medical.patient_constraint n) in
    dt *. 1e9 /. float_of_int (3 * n)
  in
  let ablate run =
    let on = run () in
    State.set_memoization false;
    let off = Fun.protect ~finally:(fun () -> State.set_memoization true) run in
    (on, off)
  in
  let e1_on, e1_off = ablate run_e1 in
  record "e16" "e1_memo_on_ns" e1_on;
  record "e16" "e1_memo_off_ns" e1_off;
  pf "%-36s %18.0f %18.0f@." "E1 quasi-regular (3200 actions)" e1_on e1_off;
  let e2_on, e2_off = ablate run_e2 in
  record "e16" "e2_memo_on_ns" e2_on;
  record "e16" "e2_memo_off_ns" e2_off;
  pf "%-36s %18.0f %18.0f@." "E2 patient constraint (32 patients)" e2_on e2_off;
  (* part 2: the Fig. 9 grant loop — permitted followed by try_action.
     With the one-slot successor cache the pair costs one transition; the
     top-level transition counter makes that directly observable. *)
  pf "@.%-36s %30s@." "successor cache" "transitions per granted action";
  let grant_loop () =
    let n = 1000 in
    let s = Engine.create e1_expr in
    let before = State.transitions () in
    for i = 0 to n - 1 do
      let a = act (List.nth e1_script (i mod List.length e1_script)) [] in
      assert (Engine.permitted s a);
      assert (Engine.try_action s a)
    done;
    float_of_int (State.transitions () - before) /. float_of_int n
  in
  let with_cache = grant_loop () in
  Engine.set_successor_cache false;
  let without =
    Fun.protect ~finally:(fun () -> Engine.set_successor_cache true) grant_loop
  in
  record "e16" "transitions_per_grant_cached" with_cache;
  record "e16" "transitions_per_grant_uncached" without;
  pf "%-36s %30.2f@." "enabled" with_cache;
  pf "%-36s %30.2f@." "disabled" without;
  pf "@.(structurally equal states are physically shared; %d distinct live states)@."
    (State.live_states ())

(* ------------------------------------------------------------------ E17 *)

(* A many-conjunct workload: the coupling of [k] department capacity rules.
   The conjuncts have pairwise-disjoint alphabets, so the partition yields
   [k] shards and both evaluation layers can spread them over domains. *)
let e17_departments k = List.init k (fun i -> Printf.sprintf "dep%d" (i + 1))

let e17_expr k =
  Expr.sync_list
    (List.map
       (fun x -> Medical.department_constraint ~exam:x ~capacity:2)
       (e17_departments k))

let e17_workload ~departments ~patients =
  List.concat
    (List.init patients (fun i ->
         let p = Medical.patient (i + 1) in
         List.concat_map
           (fun x ->
             [ act "call_s" [ p; x ]; act "call_t" [ p; x ];
               act "perform_s" [ p; x ]; act "perform_t" [ p; x ] ])
           departments))

let e17_domain_counts = [ 1; 2; 4; 8 ]

let e17 () =
  header "E17" "multicore scaling: domain-sharded evaluation (lib/exec)"
    "independent conjuncts evaluate in parallel; sequential semantics is the oracle";
  let k = 8 and patients = 100 in
  let e = e17_expr k in
  let w = e17_workload ~departments:(e17_departments k) ~patients in
  let n = List.length w in
  pf "expression: coupling of %d department capacity rules (%d shards)@." k
    (List.length (Partition.partition e));
  pf "workload:   %d actions, fed as one batch@.@." n;
  record "e17" "actions" (float_of_int n);
  record "e17" "conjuncts" (float_of_int k);
  record "e17" "host_cores" (float_of_int (Domain.recommended_domain_count ()));
  (* Every configuration is measured in steady state (see [steady] above):
     a cold run confounds shard scaling with first-touch state construction
     — which E2/E16 already measure — and the domains of a fresh pool start
     with cold tables while the inline path inherits warm ones. *)
  (* sequential baseline: the plain engine, no pool in sight.  The very
     first run of this bench process is genuinely cold — keep it as the
     one recorded cold number. *)
  Gc.full_major ();
  let (), t_cold =
    wtime (fun () ->
        let s = Engine.create e in
        assert (Engine.feed s w = []))
  in
  record "e17" "engine_seq_cold_ns_per_action" (t_cold *. 1e9 /. float_of_int n);
  let t_seq =
    steady
      ~mk:(fun () -> Engine.create e)
      ~run:(fun s -> assert (Engine.feed s w = []))
  in
  let seq_tp = float_of_int n /. t_seq in
  record "e17" "engine_seq_throughput" seq_tp;
  record "e17" "engine_seq_ns_per_action" (t_seq *. 1e9 /. float_of_int n);
  pf "%10s %8s %16s %16s %10s %12s@." "layer" "domains" "actions/s" "ns/action"
    "speedup" "coordinations";
  pf "%10s %8s %16.0f %16.0f %10s %12s@." "engine" "(seq)" seq_tp
    (t_seq *. 1e9 /. float_of_int n) "-" "-";
  let engine_d1 = ref nan and manager_d1 = ref nan in
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun pool ->
          (* engine layer: sharded batch feed, sequential fallback at d=1 *)
          let dt =
            steady
              ~mk:(fun () -> Pengine.create ~pool e)
              ~run:(fun p -> assert (Pengine.feed p w = []))
          in
          let tp = float_of_int n /. dt in
          if d = 1 then engine_d1 := tp;
          record "e17" (Printf.sprintf "engine_throughput_d%d" d) tp;
          record "e17" (Printf.sprintf "engine_speedup_d%d" d) (tp /. !engine_d1);
          pf "%10s %8d %16.0f %16.0f %9.2fx %12s@." "engine" d tp
            (dt *. 1e9 /. float_of_int n)
            (tp /. !engine_d1) "-";
          (* manager layer: one replica per shard, batch execute *)
          let last_sm = ref None in
          let dt2 =
            steady
              ~mk:(fun () ->
                let sm = Interaction_manager.Sharded.create ~pool e in
                last_sm := Some sm;
                sm)
              ~run:(fun sm ->
                assert
                  (List.for_all Fun.id
                     (Interaction_manager.Sharded.execute_batch sm ~client:"bench" w)))
          in
          let sm = Option.get !last_sm in
          assert (Interaction_manager.Sharded.coordinations sm = 0);
          let tp2 = float_of_int n /. dt2 in
          if d = 1 then manager_d1 := tp2;
          record "e17" (Printf.sprintf "manager_throughput_d%d" d) tp2;
          record "e17" (Printf.sprintf "manager_speedup_d%d" d) (tp2 /. !manager_d1);
          record "e17"
            (Printf.sprintf "manager_coordinations_d%d" d)
            (float_of_int (Interaction_manager.Sharded.coordinations sm));
          pf "%10s %8d %16.0f %16.0f %9.2fx %12d@." "manager" d tp2
            (dt2 *. 1e9 /. float_of_int n)
            (tp2 /. !manager_d1)
            (Interaction_manager.Sharded.coordinations sm)))
    e17_domain_counts;
  record "e17" "engine_d1_vs_seq" (!engine_d1 /. seq_tp);
  (* the E2-style quantified constraint does not decompose: one component,
     so the parallel layer falls back to the sequential path — recorded so
     the scaling table states its own limits *)
  let e2e = Medical.patient_constraint in
  record "e17" "e2_constraint_shards"
    (float_of_int (List.length (Partition.partition e2e)));
  pf "@.(the quantified E2 constraint has %d shard — quantifiers do not decompose;@."
    (List.length (Partition.partition e2e));
  pf " speedup on this host is bounded by its %d core(s))@."
    (Domain.recommended_domain_count ())

(* Parallel-vs-sequential oracle agreement, run by `smoke --domains N` in CI:
   any disagreement between the sharded evaluation and the sequential engine
   on accept/reject decisions, traces, finality, or word verdicts fails the
   build. *)
let parallel_smoke ~domains =
  let k = 4 in
  let e = e17_expr k in
  let deps = e17_departments k in
  let good = e17_workload ~departments:deps ~patients:25 in
  (* stray perform/terminate actions that must be rejected, plus a foreign one *)
  let stray =
    [ act "perform_s" [ "p999"; "dep1" ]; act "call_t" [ "p998"; "dep3" ];
      act "unrelated" [] ]
  in
  let w = good @ stray in
  let seq_sess = Engine.create e in
  let seq_rej = Engine.feed seq_sess w in
  let fail fmt =
    Format.kasprintf
      (fun m ->
        Format.eprintf "parallel smoke FAILED: %s@." m;
        exit 1)
      fmt
  in
  Pool.with_pool ~domains (fun pool ->
      let p = Pengine.create ~pool e in
      let par_rej = Pengine.feed p w in
      if par_rej <> seq_rej then
        fail "rejected lists differ (seq %d, par %d)" (List.length seq_rej)
          (List.length par_rej);
      if Pengine.is_final p <> Engine.is_final seq_sess then fail "finality differs";
      (* per-shard traces must be the sequential trace's shard projections *)
      let seq_trace = Engine.trace seq_sess in
      let par_traces = Pengine.traces p in
      let projected =
        List.map
          (fun (ce : Expr.t) ->
            let al = Alpha.of_expr ce in
            List.filter (Alpha.mem al) seq_trace)
          (Partition.partition e)
      in
      (match Pengine.mode p with
      | Pengine.Sharded _ ->
        if par_traces <> projected then fail "shard traces are not the projections"
      | Pengine.Sequential ->
        if par_traces <> [ seq_trace ] then fail "sequential-mode trace differs");
      (* word problem verdicts *)
      List.iter
        (fun (label, word) ->
          let vs = Engine.word e word and vp = Pengine.word ~pool e word in
          if vs <> vp then
            fail "word verdict differs on %s (%a vs %a)" label Semantics.pp_verdict vs
              Semantics.pp_verdict vp)
        [ ("good-prefix", good); ("with-stray", w);
          ("empty", []); ("one-pair", [ act "call" [ "p1"; "dep1" ]; act "perform" [ "p1"; "dep1" ] ]) ]);
  record "smoke_parallel" "domains" (float_of_int domains);
  record "smoke_parallel" "agree" 1.;
  pf "@.parallel smoke (%d domains): sharded evaluation agrees with the sequential oracle@."
    domains

(* Compiled-vs-interpreted oracle agreement, run by `smoke` in CI: the
   compiled transition kernel (signature classifier + lazy automaton) must
   agree with the interpreted τ̂ on verdicts, rejected actions and finality
   — sequentially always, and against the sharded evaluation when the
   smoke run has domains.  Any disagreement fails the build. *)
let compiled_smoke ~domains =
  let fail fmt =
    Format.kasprintf
      (fun m ->
        Format.eprintf "compiled smoke FAILED: %s@." m;
        exit 1)
      fmt
  in
  let with_compilation b f =
    State.set_compilation b;
    Fun.protect ~finally:(fun () -> State.set_compilation true) f
  in
  let e17e = e17_expr 4 in
  let e17w =
    e17_workload ~departments:(e17_departments 4) ~patients:10
    @ [ act "perform_s" [ "p999"; "dep1" ]; act "unrelated" [] ]
  in
  let cases =
    [ ("e1-script", e1_expr, List.map (fun n -> act n []) e1_script);
      ("e1-with-stray", e1_expr, List.map (fun n -> act n []) [ "a"; "e"; "a"; "c"; "b" ]);
      ("e2-patients", Medical.patient_constraint,
       List.concat
         (List.init 6 (fun i ->
              let p = Medical.patient (i + 1) in
              List.map (fun a -> act a [ p; "sono" ])
                [ "prepare_s"; "prepare_t"; "call_s"; "call_t"; "perform_s"; "perform_t" ])));
      ("e17-departments", e17e, e17w);
      ("random-walk", e1_expr, Simulate.random_trace ~seed:42 ~length:40 e1_expr)
    ]
  in
  let with_backend pref f =
    let was = Engine.backend () in
    Engine.set_backend pref;
    Fun.protect ~finally:(fun () -> Engine.set_backend was) f
  in
  List.iter
    (fun (label, e, word) ->
      let vc = with_compilation true (fun () -> Engine.word e word) in
      let vi = with_compilation false (fun () -> Engine.word e word) in
      if vc <> vi then
        fail "word verdict differs on %s (compiled %a, interpreted %a)" label
          Semantics.pp_verdict vc Semantics.pp_verdict vi;
      (* every backend preference must agree too: the bytecode VM where
         the expression compiles (forced vm degrades, never diverges) *)
      List.iter
        (fun pref ->
          let vb =
            with_compilation true (fun () ->
                with_backend pref (fun () -> Engine.word e word))
          in
          if vb <> vi then
            fail "word verdict differs on %s under --engine %s (%a vs %a)"
              label
              (match pref with
              | None -> "auto"
              | Some b -> Engine.backend_name b)
              Semantics.pp_verdict vb Semantics.pp_verdict vi)
        [ None; Some Engine.Table; Some Engine.Vm ];
      let run b =
        with_compilation b (fun () ->
            let s = Engine.create e in
            let rej = Engine.feed s word in
            (rej, Engine.is_final s))
      in
      let rc, fc = run true and ri, fi = run false in
      if not (List.equal Action.equal_concrete rc ri) then
        fail "rejected lists differ on %s (compiled %d, interpreted %d)" label
          (List.length rc) (List.length ri);
      if fc <> fi then fail "finality differs on %s" label)
    cases;
  if domains > 1 then
    Pool.with_pool ~domains (fun pool ->
        (* sharded evaluation with the compiled kernel vs the sequential
           interpreted oracle *)
        let p = with_compilation true (fun () -> Pengine.create ~pool e17e) in
        let par_rej = with_compilation true (fun () -> Pengine.feed p e17w) in
        let seq_rej =
          with_compilation false (fun () ->
              let s = Engine.create e17e in
              Engine.feed s e17w)
        in
        if par_rej <> seq_rej then
          fail "sharded compiled rejected list differs (par %d, seq %d)"
            (List.length par_rej) (List.length seq_rej));
  record "smoke_compiled" "domains" (float_of_int domains);
  record "smoke_compiled" "agree" 1.;
  pf "@.compiled smoke (%d domains): compiled kernel agrees with the interpreted oracle@."
    domains

(* ------------------------------------------------------------------ E18 *)

(* The compiled transition kernel (signature classifier + lazy automaton,
   lib/core/automaton.ml) against the interpreted τ̂ — same process, same
   warm memo tables, only the kill switch flipped between measurements. *)

let e18_word =
  (* a legal E2 word: four patients run a full sonography *)
  List.concat
    (List.init 4 (fun i ->
         let p = Medical.patient (i + 1) in
         List.map (fun a -> act a [ p; "sono" ])
           [ "prepare_s"; "prepare_t"; "call_s"; "call_t"; "perform_s"; "perform_t" ]))

let e18 () =
  header "E18" "compiled transition kernel: signature-keyed automaton vs interpreted τ̂"
    "not in the paper — engineering: the word/action hot path as a table walk";
  (* earlier experiments drive the same expressions (E2 walks the patient
     constraint with 64 live patients); drop their automata so the
     before/after table measures this workload's rows, not theirs *)
  Automaton.reset_shared ();
  let with_compilation b f =
    State.set_compilation b;
    Fun.protect ~finally:(fun () -> State.set_compilation true) f
  in
  let steady run =
    run ();  (* warmup: fill memo tables / automaton rows *)
    let best = ref infinity in
    for _ = 1 to 7 do
      Gc.full_major ();
      let (), dt = wtime run in
      if dt < !best then best := dt
    done;
    !best
  in
  pf "%-44s %14s %14s %9s@." "workload" "interp ns/act" "compiled ns/act" "speedup";
  let row label key ~actions run =
    let t_on = with_compilation true (fun () -> steady run) in
    let t_off = with_compilation false (fun () -> steady run) in
    let per t = t *. 1e9 /. float_of_int actions in
    record "e18" (key ^ "_interpreted_ns_per_action") (per t_off);
    record "e18" (key ^ "_compiled_ns_per_action") (per t_on);
    record "e18" (key ^ "_speedup") (t_off /. t_on);
    pf "%-44s %14.0f %14.0f %8.2fx@." label (per t_off) (per t_on) (t_off /. t_on)
  in
  (* A — the acceptance workload: the word problem asked over and over on
     the quantified E2 constraint (the paper's Fig. 2 scenario), as a
     workflow server validating incoming traces would *)
  let e = Medical.patient_constraint in
  assert (Engine.word e e18_word = Engine.Complete);
  let reps = 2_000 in
  row "repeated word, quantified E2 constraint" "word"
    ~actions:(reps * List.length e18_word)
    (fun () -> for _ = 1 to reps do ignore (Engine.word e e18_word) done);
  (* B — the E16-style session loop on the quasi-regular E1 expression:
     eagerly compiled, so every step is a warm table hit *)
  let e1_n = 20_000 in
  row "session loop, quasi-regular E1 expression" "e1" ~actions:e1_n (fun () ->
      let s = Engine.create e1_expr in
      for i = 0 to e1_n - 1 do
        let a = act (List.nth e1_script (i mod List.length e1_script)) [] in
        ignore (Engine.try_action s a)
      done);
  (* C — the E2 growth feed: every patient materializes a new quantifier
     instance, so the automaton keeps interning fresh rows (lazy path) *)
  let patients = 150 in
  row "growth feed, one new instance per patient" "feed" ~actions:(3 * patients)
    (fun () -> ignore (e2_feed_patients e patients));
  (* cold vs warm: the lazy automaton's first word pays table fill (plus
     the interpreted τ̂ it falls back on); the steady state is the walk *)
  with_compilation true (fun () ->
      let a = Automaton.create ~eager:false e in
      Gc.full_major ();
      let (), t_cold = wtime (fun () -> ignore (Automaton.run_word a e18_word)) in
      let warm_reps = 500 in
      let t_warm =
        steady (fun () ->
            for _ = 1 to warm_reps do ignore (Automaton.run_word a e18_word) done)
        /. float_of_int warm_reps
      in
      record "e18" "cold_first_word_ns" (t_cold *. 1e9);
      record "e18" "warm_word_ns" (t_warm *. 1e9);
      record "e18" "cold_vs_warm" (t_cold /. t_warm);
      pf "@.cold first word %.0f ns, warm word %.0f ns (%.0fx: lazy compilation pays@."
        (t_cold *. 1e9) (t_warm *. 1e9) (t_cold /. t_warm);
      pf "for itself once a word repeats)@.";
      let st = Automaton.stats () in
      let i = Automaton.info (Automaton.shared e) in
      record "e18" "automaton_rows" (float_of_int i.Automaton.rows);
      record "e18" "automaton_signatures" (float_of_int i.Automaton.signatures);
      record "e18" "automaton_fallbacks" (float_of_int st.Automaton.fallbacks);
      record "e18" "automaton_steps" (float_of_int st.Automaton.steps);
      let hr =
        let h = st.Automaton.sig_cache_hits and m = st.Automaton.sig_cache_misses in
        if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)
      in
      record "e18" "sig_cache_hit_rate" hr;
      pf "@.shared automaton for the E2 constraint: %d rows, %d signatures;@."
        i.Automaton.rows i.Automaton.signatures;
      pf "process-wide: %d compiled steps, %d interpreted fallbacks, %.4f signature-cache hit rate@."
        st.Automaton.steps st.Automaton.fallbacks hr)

(* ------------------------------------------------------------------ E19 *)

(* The durable manager (lib/manager/durable.ml): what the WAL costs on the
   coordination hot path, what fsync costs on top of the append, and how
   fast recovery replays — plus the bounded tentative-successor cache
   (lib/core/scache.ml, shared by Manager) under the contended multi-client
   workload whose interleaved ask/confirm pairs defeated the one-slot
   predecessor (0.3% hit rate, BENCH_pr4). *)

module Mgr = Interaction_manager.Manager
module Dur = Interaction_manager.Durable
module Mq = Interaction_manager.Mqueue
module Wal = Interaction_store.Wal

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let e19_store_root () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ibench-e19-%d" (Unix.getpid ()))

let e19_patients = List.init 8 (fun i -> Medical.patient (i + 1))

(* One steady-state round over the capacity-3 ward: the eight patients'
   start/terminate pairs interleaved round-robin, so consecutive manager
   calls come from different sessions.  Capacity 3 admits three concurrent
   examinations and refuses the rest, so every round mixes commits (each an
   ask miss + confirm hit on the tentative cache) with denials. *)
let e19_round =
  List.concat_map
    (fun nm -> List.map (fun p -> (p, act nm [ p; "sono" ])) e19_patients)
    [ "call_s"; "call_t"; "perform_s"; "perform_t" ]

let e19 () =
  header "E19" "durable manager: WAL on the hot path, snapshots, recovery replay"
    "not in the paper — engineering: coordination state that survives process death";
  let e_word () = Medical.capacity_constraint ~capacity:3 () in
  let root = e19_store_root () in
  rm_rf root;
  let rounds = 50 in
  let actions = rounds * List.length e19_round in
  (* each config replays the identical deterministic script: subscribe a
     worklist, then [rounds] interleaved rounds, then drain *)
  let drive ~execute ~subscribe ~drain =
    subscribe ~client:"worklist" (act "call_s" [ Medical.patient 1; "sono" ]);
    for _ = 1 to rounds do
      List.iter (fun (p, a) -> ignore (execute ~client:("wf-" ^ p) a)) e19_round
    done;
    ignore (drain ~client:"worklist")
  in
  let per dt = dt *. 1e9 /. float_of_int actions in
  pf "%-44s %14s %9s@." "word workload (32 actions/round, 8 sessions)" "ns/action"
    "vs none";
  let volatile_ns = ref 0. in
  let word_row label key run =
    Gc.full_major ();
    let (), dt = wtime run in
    let ns = per dt in
    record "e19" (key ^ "_word_ns_per_action") ns;
    if key = "volatile" then volatile_ns := ns;
    pf "%-44s %14.0f %8.2fx@." label ns
      (if !volatile_ns > 0. then ns /. !volatile_ns else 1.);
    ns
  in
  (* warmup: fill the global memo tables once, so the first measured config
     isn't charged for cold caches the later ones inherit warm *)
  (let m = Mgr.create (e_word ()) in
   drive
     ~execute:(fun ~client a -> ignore (Mgr.execute m ~client a))
     ~subscribe:(Mgr.subscribe m)
     ~drain:(fun ~client -> ignore (Mgr.drain_notifications m ~client)));
  (* volatile: the plain manager, durability compiled in but no store
     attached — the cost every pre-WAL client keeps paying *)
  Mgr.reset_tentative_cache_stats ();
  let commits = ref 0 in
  let (_ : float) =
    word_row "volatile Manager (no store)" "volatile" (fun () ->
        let m = Mgr.create (e_word ()) in
        drive
          ~execute:(fun ~client a ->
            if Mgr.execute m ~client a then incr commits)
          ~subscribe:(Mgr.subscribe m)
          ~drain:(fun ~client -> ignore (Mgr.drain_notifications m ~client)))
  in
  let hits, misses = Mgr.tentative_cache_stats () in
  let hit_rate =
    if hits + misses = 0 then 0.
    else float_of_int hits /. float_of_int (hits + misses)
  in
  assert (!commits > 0);
  (* WAL without fsync: append-only logging, commit point at the append *)
  let wal_dir = Filename.concat root "word-wal" in
  let wal_records = ref 0 in
  let (_ : float) =
    word_row "Durable, WAL append (fsync off)" "wal" (fun () ->
        let d = Dur.open_ ~fsync:false ~dir:wal_dir (e_word ()) in
        drive ~execute:(Dur.execute d) ~subscribe:(Dur.subscribe d)
          ~drain:(fun ~client -> ignore (Dur.drain_notifications d ~client));
        wal_records :=
          List.length (Wal.records (Filename.concat wal_dir "wal.log"));
        Dur.close d)
  in
  (* WAL with fsync on every commit: the full durability guarantee; far
     fewer rounds, each append now waits on the disk *)
  let fsync_rounds = 4 in
  let fsync_dir = Filename.concat root "word-fsync" in
  (let d = Dur.open_ ~fsync:true ~dir:fsync_dir (e_word ()) in
   Gc.full_major ();
   let (), dt =
     wtime (fun () ->
         for _ = 1 to fsync_rounds do
           List.iter
             (fun (p, a) -> ignore (Dur.execute d ~client:("wf-" ^ p) a))
             e19_round
         done)
   in
   Dur.close d;
   let ns = dt *. 1e9 /. float_of_int (fsync_rounds * List.length e19_round) in
   record "e19" "wal_fsync_word_ns_per_action" ns;
   pf "%-44s %14.0f %8.2fx@." "Durable, WAL + fsync every commit" ns
     (ns /. !volatile_ns));
  pf "@.tentative successor cache (bounded per-session map, volatile run):@.";
  pf "  %d hits / %d misses — %.1f%% hit rate (one-slot predecessor: 0.3%%)@."
    hits misses (100. *. hit_rate);
  record "e19" "tentative_cache_hits" (float_of_int hits);
  record "e19" "tentative_cache_misses" (float_of_int misses);
  record "e19" "tentative_cache_hit_rate" hit_rate;
  (* the kill switch degrades both the engine and manager caches together *)
  Engine.set_successor_cache false;
  Mgr.reset_tentative_cache_stats ();
  let m = Mgr.create (e_word ()) in
  drive
    ~execute:(fun ~client a -> ignore (Mgr.execute m ~client a))
    ~subscribe:(Mgr.subscribe m)
    ~drain:(fun ~client -> ignore (Mgr.drain_notifications m ~client));
  let off_hits, _ = Mgr.tentative_cache_stats () in
  Engine.set_successor_cache true;
  Mgr.reset_tentative_cache_stats ();
  record "e19" "tentative_cache_hits_killed" (float_of_int off_hits);
  pf "  with set_successor_cache false: %d hits (kill switch verified)@." off_hits;
  (* growth feed: every patient materializes a quantifier instance, so the
     WAL cost rides on top of ever-larger state images *)
  let feed_patients = 60 in
  let feed nm execute =
    for i = 1 to feed_patients do
      let p = Medical.patient i in
      List.iter
        (fun a -> ignore (execute ~client:("wf-" ^ p) (act a [ p; "sono" ])))
        [ "prepare_s"; "prepare_t"; "call_s"; "call_t"; "perform_s"; "perform_t" ];
      ignore nm
    done
  in
  let feed_actions = 6 * feed_patients in
  (* same warmup argument as above: one untimed feed fills the per-instance
     memo tables both measured feeds then share *)
  (let m = Mgr.create Medical.patient_constraint in
   feed "warmup" (Mgr.execute m));
  Gc.full_major ();
  let mfeed = Mgr.create Medical.patient_constraint in
  let (), t_feed_v = wtime (fun () -> feed "volatile" (Mgr.execute mfeed)) in
  let feed_dir = Filename.concat root "feed-wal" in
  Gc.full_major ();
  let dfeed = Dur.open_ ~fsync:false ~dir:feed_dir Medical.patient_constraint in
  let (), t_feed_w = wtime (fun () -> feed "wal" (Dur.execute dfeed)) in
  Dur.close dfeed;
  let fv = t_feed_v *. 1e9 /. float_of_int feed_actions in
  let fw = t_feed_w *. 1e9 /. float_of_int feed_actions in
  record "e19" "volatile_feed_ns_per_action" fv;
  record "e19" "wal_feed_ns_per_action" fw;
  pf "@.growth feed, %d patients: volatile %.0f ns/action, WAL %.0f ns/action (%.2fx)@."
    feed_patients fv fw (fw /. fv);
  (* recovery: reopen the word-workload store and time the replay; then
     snapshot and reopen again — the snapshot bounds replay to zero *)
  let d, t_rec = wtime (fun () -> Dur.open_ ~fsync:false ~dir:wal_dir (e_word ())) in
  let replayed = Dur.replayed d in
  Dur.snapshot d;
  Dur.close d;
  let d2, t_rec2 = wtime (fun () -> Dur.open_ ~fsync:false ~dir:wal_dir (e_word ())) in
  let replayed2 = Dur.replayed d2 in
  Dur.close d2;
  record "e19" "recovery_replayed_records" (float_of_int replayed);
  record "e19" "recovery_ms" (t_rec *. 1e3);
  record "e19" "recovery_records_per_s"
    (if t_rec > 0. then float_of_int replayed /. t_rec else 0.);
  record "e19" "recovery_after_snapshot_replayed" (float_of_int replayed2);
  record "e19" "recovery_after_snapshot_ms" (t_rec2 *. 1e3);
  pf "@.recovery: %d WAL records (%d appended) replayed in %.1f ms (%.0f records/s);@."
    replayed !wal_records (t_rec *. 1e3)
    (if t_rec > 0. then float_of_int replayed /. t_rec else 0.);
  pf "after snapshot: %d replayed in %.2f ms (replay bounded by snapshot cadence)@."
    replayed2 (t_rec2 *. 1e3);
  rm_rf root

(* ------------------------------------------------------------------ E20 *)

(* The three executable backends against each other: interpreted τ̂,
   signature automaton (table), and the ahead-of-time bytecode VM — the
   engine preference is the only thing flipped between measurements.

   Unlike E18, every round measures all engines back to back (interleaved,
   best-of across rounds): measuring one column fully before the other
   gave the later column a systematic ~5–8% handicap on this machine
   (frequency/cache drift) — with identical code on both columns E18's
   protocol reported 0.92–0.95x.  Interleaving removes the bias instead
   of hiding it in the ratio. *)

let e20 () =
  header "E20" "bytecode VM vs lazy automaton vs interpreted τ̂ (interleaved rounds)"
    "not in the paper — engineering: harmless expressions as flat programs";
  Automaton.reset_shared ();
  Bytecode.reset_shared ();
  (* engine-vs-engine only: the smoke run arms telemetry for the trace
     artifact, but a per-action span tax on every column compresses the
     ratios toward 1 — switch it off for the measured section *)
  let tel = Telemetry.enabled () in
  Telemetry.disable ();
  Fun.protect ~finally:(fun () -> if tel then Telemetry.enable ())
  @@ fun () ->
  let saved = Engine.backend () in
  let with_backend pref f =
    Engine.set_backend pref;
    Fun.protect ~finally:(fun () -> Engine.set_backend saved) f
  in
  (* auto is the shipped default for the vm column: harmless expressions
     (word, e1) run on the VM, the quantified E2 feed degrades to the
     automaton — exactly what a deployment with compilation on gets *)
  let engines =
    [ ("interp", Some Engine.Interp); ("table", Some Engine.Table); ("vm", None) ]
  in
  let rounds = 25 in
  let measure run =
    List.iter (fun (_, pref) -> with_backend pref run) engines;  (* warmup *)
    let samples =
      Array.of_list (List.map (fun (name, pref) -> (name, pref, ref [])) engines)
    in
    let n = Array.length samples in
    (* rotate who goes first each round: the engine measured right after
       the previous round's tail systematically sees a different cache and
       heap than the one measured last, and at parity that position bias
       is the whole signal *)
    for r = 0 to rounds - 1 do
      for k = 0 to n - 1 do
        let _, pref, acc = samples.((k + r) mod n) in
        with_backend pref (fun () ->
            Gc.full_major ();
            let (), dt = wtime run in
            acc := dt :: !acc)
      done
    done;
    Array.to_list (Array.map (fun (name, _, acc) -> (name, !acc)) samples)
  in
  pf "%-38s %11s %11s %11s %8s %8s@." "workload" "interp" "table" "vm"
    "tbl/int" "vm/int";
  let row label key ~actions run =
    let res = measure run in
    let times name = List.assoc name res in
    let per name =
      List.fold_left min infinity (times name) *. 1e9 /. float_of_int actions
    in
    (* paired speedups: a host-noise epoch outlasting one round inflates
       every engine of that round together, so the median of per-round
       ratios is far more stable than the ratio of minima taken from
       different rounds *)
    let ratio name =
      let rs = List.map2 (fun i t -> i /. t) (times "interp") (times name) in
      let a = Array.of_list rs in
      Array.sort compare a;
      a.(Array.length a / 2)
    in
    let interp = per "interp" and table = per "table" and vm = per "vm" in
    List.iter
      (fun name -> record "e20" (Printf.sprintf "%s_%s_ns_per_action" key name) (per name))
      [ "interp"; "table"; "vm" ];
    record "e20" (key ^ "_table_vs_interp_speedup") (ratio "table");
    record "e20" (key ^ "_vm_vs_interp_speedup") (ratio "vm");
    pf "%-38s %11.0f %11.0f %11.0f %7.2fx %7.2fx@." label interp table vm
      (ratio "table") (ratio "vm")
  in
  (* A — the word problem on the harmless E1 expression: the VM walks a
     27-state flat program; steady-state target is tens of ns per action *)
  let word1 = List.map (fun n -> act n []) [ "a"; "c"; "e"; "b"; "d"; "f" ] in
  assert (Engine.word e1_expr word1 <> Semantics.Illegal);
  let reps = 5_000 in
  row "word, harmless E1 expression" "word" ~actions:(reps * List.length word1)
    (fun () -> for _ = 1 to reps do ignore (Engine.word e1_expr word1) done);
  (* B — the E16/E18 session loop on E1: the action problem through
     sessions, VM-bound under auto *)
  let e1_n = 20_000 in
  row "session loop, harmless E1 expression" "e1" ~actions:e1_n (fun () ->
      let s = Engine.create e1_expr in
      for i = 0 to e1_n - 1 do
        let a = act (List.nth e1_script (i mod List.length e1_script)) [] in
        ignore (Engine.try_action s a)
      done);
  (* C — the E2 growth feed: quantified, so the vm column exercises the
     auto fallback to the automaton (and its batched-counter warm path) *)
  let patients = 150 in
  (* 5 feeds per timed region: one feed is ~450 actions (~0.1 ms), small
     enough that timer and cache jitter dominate a single run *)
  let feed_reps = 25 in
  row "growth feed, quantified E2 constraint" "feed"
    ~actions:(feed_reps * 3 * patients) (fun () ->
      for _ = 1 to feed_reps do
        ignore (e2_feed_patients Medical.patient_constraint patients)
      done);
  (* shape of the compiled artifact the word workload ran on *)
  (match Bytecode.shared e1_expr with
  | Some t ->
    let i = Bytecode.info t in
    record "e20" "e1_program_states" (float_of_int i.Bytecode.states);
    record "e20" "e1_program_columns" (float_of_int i.Bytecode.columns);
    pf "@.E1 program: %d states over %d signature columns@." i.Bytecode.states
      i.Bytecode.columns
  | None -> pf "@.E1 program: not compiled (kill switch off?)@.");
  let st = Bytecode.stats () in
  record "e20" "vm_steps" (float_of_int st.Bytecode.steps);
  record "e20" "vm_fallbacks" (float_of_int st.Bytecode.fallbacks);
  pf "process-wide: %d vm steps, %d interpreted fallbacks, %d program(s), %d compile failure(s)@."
    st.Bytecode.steps st.Bytecode.fallbacks st.Bytecode.programs
    st.Bytecode.failures

(* ------------------------------------------------ crash-recovery smoke - *)

(* Kill–replay–verify, run by CI's crash-recovery-smoke job: a scripted
   session on the durable manager is cut at every WAL record boundary; each
   cut must recover to the observable state of an oracle that executed the
   logged prefix.  test/test_recovery.ml is the thorough matrix (torn
   writes, corruption, snapshots); this is the fast canary that also leaves
   the diverging store behind for the CI artifact upload. *)

let crash_store_dir = "crash-smoke-store"

let crash_smoke () =
  header "CRASH" "kill–replay–verify: cut the WAL at every record boundary"
    "recovered manager must match the prefix oracle at every cut";
  let e = Syntax.parse_exn "mutex(a - b, c - d)" in
  let a n = act n [] in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ibench-crash-%d" (Unix.getpid ()))
  in
  rm_rf root;
  rm_rf crash_store_dir;
  let src = Filename.concat root "live" in
  let d = Dur.open_ ~fsync:false ~dir:src e in
  let oracle = Mgr.create e in
  let wal = Filename.concat src "wal.log" in
  let is_op r = String.length r >= 2 && String.sub r 0 2 = "(r" in
  let ops_now () = List.length (List.filter is_op (Wal.records wal)) in
  (* oracle image per op-record count: a cut with j op records in its
     prefix must recover to the image stored under j *)
  let imgs = ref [ (0, Sexp.to_string (Mgr.image oracle)) ] in
  let step i fd fo =
    Telemetry.with_trace (500 + i) (fun () ->
        fd ();
        fo ());
    imgs := (ops_now (), Sexp.to_string (Mgr.image oracle)) :: !imgs
  in
  let recv_oracle client =
    ignore (Mq.receive_envelope (Mgr.inbox oracle ~client))
  in
  let script =
    [ (fun () -> ignore (Dur.execute d ~client:"w1" (a "a"))),
      (fun () -> ignore (Mgr.execute oracle ~client:"w1" (a "a")));
      (fun () -> Dur.subscribe d ~client:"mon" (a "b")),
      (fun () -> Mgr.subscribe oracle ~client:"mon" (a "b"));
      (fun () -> ignore (Dur.execute d ~client:"w2" (a "c"))),
      (fun () -> ignore (Mgr.execute oracle ~client:"w2" (a "c")));
      (fun () -> ignore (Dur.execute d ~client:"w1" (a "b"))),
      (fun () -> ignore (Mgr.execute oracle ~client:"w1" (a "b")));
      (fun () -> ignore (Dur.receive_notification d ~client:"mon")),
      (fun () -> recv_oracle "mon");
      (fun () -> Dur.crash_client d ~client:"mon"),
      (fun () -> Mq.crash_receiver (Mgr.inbox oracle ~client:"mon"));
      (fun () -> ignore (Dur.receive_notification d ~client:"mon")),
      (fun () -> recv_oracle "mon");
      (fun () -> Dur.ack_notification d ~client:"mon"),
      (fun () -> Mq.ack (Mgr.inbox oracle ~client:"mon"));
      (fun () -> ignore (Dur.execute d ~client:"w2" (a "d"))),
      (fun () -> ignore (Mgr.execute oracle ~client:"w2" (a "d")))
    ]
  in
  List.iteri (fun i (fd, fo) -> step i fd fo) script;
  Dur.close d;
  (* frame scan: every prefix length that ends exactly on a record *)
  let bytes = In_channel.with_open_bin wal In_channel.input_all in
  let boundaries =
    let bs = ref [ 0 ] and pos = ref 0 in
    while !pos + 8 <= String.length bytes do
      let len = Int32.to_int (String.get_int32_le bytes !pos) in
      pos := !pos + 8 + len;
      if !pos <= String.length bytes then bs := !pos :: !bs
    done;
    List.rev !bs
  in
  if List.length boundaries < 8 then begin
    Format.eprintf "crash-smoke: script too short (%d boundaries)@."
      (List.length boundaries);
    exit 1
  end;
  let probes = List.map a [ "a"; "b"; "c"; "d" ] in
  let failures = ref 0 in
  List.iteri
    (fun k cut ->
      let dst = Filename.concat root (Printf.sprintf "cut-%d" k) in
      Unix.mkdir dst 0o755;
      Out_channel.with_open_bin (Filename.concat dst "wal.log") (fun oc ->
          Out_channel.output_string oc (String.sub bytes 0 cut));
      let prefix = Wal.records (Filename.concat dst "wal.log") in
      let j = List.length (List.filter is_op prefix) in
      let o = Mgr.of_image (Sexp.of_string_exn (List.assoc j !imgs)) in
      let r = Dur.open_ ~fsync:false ~dir:dst e in
      let rm = Dur.manager r in
      let queue_total q = List.length (Mq.pending_envelopes q) + Mq.in_flight q in
      let ok =
        List.map (Mgr.permitted rm) probes = List.map (Mgr.permitted o) probes
        && Mgr.confirmed_log rm = Mgr.confirmed_log o
        && List.sort compare (Mgr.inbox_clients rm)
           = List.sort compare (Mgr.inbox_clients o)
        && List.for_all
             (fun c ->
               let qr = Mgr.inbox rm ~client:c and qo = Mgr.inbox o ~client:c in
               Mq.sent_count qr = Mq.sent_count qo
               && queue_total qr = queue_total qo)
             (Mgr.inbox_clients o)
      in
      Dur.close r;
      if not ok then begin
        incr failures;
        (* preserve the diverging store where CI picks artifacts up *)
        if not (Sys.file_exists crash_store_dir) then Sys.rename dst crash_store_dir;
        Format.eprintf
          "crash-smoke: divergence at cut %d (%d bytes, %d ops in prefix)@." k cut j
      end)
    boundaries;
  if !failures > 0 then begin
    Format.eprintf "crash-smoke: %d diverging cut(s); store preserved in %s/@."
      !failures crash_store_dir;
    exit 1
  end;
  record "crash_smoke" "cuts" (float_of_int (List.length boundaries));
  record "crash_smoke" "agree" 1.;
  rm_rf root;
  pf "crash smoke: %d cuts, every recovery matches its prefix oracle@."
    (List.length boundaries)

(* ------------------------------------------- latency attribution ----- *)

(* Scripted request traffic whose whole causal chain is traced: every
   request mints its own trace id, is staged through an Mqueue (the
   enqueue->dequeue gap is its queue wait), then runs on a durable
   manager (engine.eval under manager.execute, wal.append on commit).
   The run then re-analyzes its own bench_trace.jsonl with the same
   lib/trace code `itrace` ships and records the attribution totals —
   CI fails the smoke if the trace ever grows orphaned spans or stops
   splitting into queue / engine / manager / WAL segments. *)
let latency_smoke ~flush_trace () =
  header "LAT" "latency attribution smoke: queued requests on a durable manager"
    "not in the paper — engineering: the telemetry artifact must explain its own latency";
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ibench-lat-%d" (Unix.getpid ()))
  in
  rm_rf root;
  let d = Dur.open_ ~fsync:false ~dir:root (Medical.capacity_constraint ~capacity:3 ()) in
  let q = Mq.create ~name:"requests" in
  let patients = List.init 4 (fun i -> Medical.patient (i + 1)) in
  let script =
    List.concat_map
      (fun nm -> List.map (fun p -> (p, act nm [ p; "sono" ])) patients)
      [ "call_s"; "call_t"; "perform_s"; "perform_t" ]
  in
  (* batch-enqueue, then drain: each request waits behind its
     predecessors, so every trace carries a non-trivial queue segment;
     the capacity-3 ward denies some requests, so denial flags show up
     in the attribution too *)
  List.iter
    (fun req -> Telemetry.in_new_trace (fun () -> Mq.send q req))
    script;
  let committed = ref 0 and requests = ref 0 in
  let rec drain () =
    match Mq.receive_envelope q with
    | None -> ()
    | Some env ->
      let p, a = Mq.payload env in
      incr requests;
      Telemetry.with_trace (Mq.trace env) (fun () ->
          if Dur.execute d ~client:("wf-" ^ p) a then incr committed);
      Mq.ack q;
      drain ()
  in
  drain ();
  Dur.close d;
  rm_rf root;
  flush_trace ();
  (* self-analysis: everything the smoke run emitted so far, this
     workload included, through the itrace pipeline *)
  let module T = Interaction_trace in
  let src = T.Source.of_file "bench_trace.jsonl" in
  let forest = T.Spantree.build src.T.Source.events in
  let attribs = T.Attrib.of_events src.T.Source.events forest in
  let sum f = List.fold_left (fun acc a -> acc + f a) 0 attribs in
  record "latency" "requests" (float_of_int !requests);
  record "latency" "committed" (float_of_int !committed);
  record "latency" "trace_events" (float_of_int forest.T.Spantree.events);
  record "latency" "bad_lines" (float_of_int src.T.Source.bad_lines);
  record "latency" "closed_spans" (float_of_int (T.Spantree.closed_count forest));
  record "latency" "orphans" (float_of_int (T.Spantree.orphans forest));
  record "latency" "traces" (float_of_int (List.length attribs));
  record "latency" "queue_ns_total" (float_of_int (sum (fun a -> a.T.Attrib.queue_ns)));
  record "latency" "engine_ns_total" (float_of_int (sum (fun a -> a.T.Attrib.engine_ns)));
  record "latency" "manager_ns_total" (float_of_int (sum (fun a -> a.T.Attrib.manager_ns)));
  record "latency" "wal_ns_total" (float_of_int (sum (fun a -> a.T.Attrib.wal_ns)));
  record "latency" "denied_traces"
    (float_of_int (List.length (List.filter (fun a -> a.T.Attrib.denied) attribs)));
  List.iter
    (fun (s : T.Report.op_stat) ->
      match s.T.Report.op with
      | "manager.execute" | "engine.eval" | "wal.append" | "mqueue.enqueue" ->
        let k = String.map (fun c -> if c = '.' then '_' else c) s.T.Report.op in
        record "latency" (k ^ "_p50_ns") (float_of_int s.T.Report.p50);
        record "latency" (k ^ "_p99_ns") (float_of_int s.T.Report.p99)
      | _ -> ())
    (T.Report.op_stats forest);
  pf "traced %d request(s) (%d committed): %d event(s), %d closed span(s), %d orphan(s), %d trace(s)@."
    !requests !committed forest.T.Spantree.events
    (T.Spantree.closed_count forest)
    (T.Spantree.orphans forest)
    (List.length attribs);
  let tq = sum (fun a -> a.T.Attrib.queue_ns)
  and te = sum (fun a -> a.T.Attrib.engine_ns)
  and tm = sum (fun a -> a.T.Attrib.manager_ns)
  and tw = sum (fun a -> a.T.Attrib.wal_ns) in
  pf "attribution totals (ns): queue=%d engine=%d manager=%d wal=%d@." tq te tm tw;
  if T.Spantree.orphans forest > 0 || src.T.Source.bad_lines > 0 then begin
    Format.eprintf
      "latency smoke: %d orphan(s) / %d bad line(s) in bench_trace.jsonl@."
      (T.Spantree.orphans forest) src.T.Source.bad_lines;
    exit 1
  end;
  if tq = 0 || te = 0 then begin
    Format.eprintf
      "latency smoke: degenerate attribution (queue=%d engine=%d)@." tq te;
    exit 1
  end

(* ------------------------------------------------------- bechamel ----- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  header "BECHAMEL" "micro-benchmarks (one Test.make per timed experiment)"
    "ns per run, ordinary-least-squares against run count";
  (* E1: one optimized transition of a quasi-regular steady state *)
  let e1_state =
    match
      State.trans_word (State.init e1_expr)
        (List.map (fun n -> act n []) [ "a"; "c"; "e"; "b" ])
    with
    | Some s -> s
    | None -> assert false
  in
  let t_e1 =
    Test.make ~name:"e1-quasi-regular-transition"
      (Staged.stage (fun () -> ignore (State.trans e1_state (act "d" []))))
  in
  (* E2: one transition of the patient constraint with 16 live patients *)
  let e2_state =
    match Engine.state (e2_feed_patients Medical.patient_constraint 16) with
    | Some s -> s
    | None -> assert false
  in
  let t_e2 =
    Test.make ~name:"e2-benign-transition-16-patients"
      (Staged.stage (fun () ->
           ignore (State.trans e2_state (act "prepare_s" [ "p99"; "endo" ]))))
  in
  (* E3: one transition of a malignant state (n = 8, after a⁸b⁴) *)
  let e3_state =
    let s = Engine.create e3_expr in
    for i = 1 to 8 do
      assert (Engine.try_action s (act "a" [ string_of_int i ]))
    done;
    for _ = 1 to 4 do
      assert (Engine.try_action s (act "b" []))
    done;
    match Engine.state s with Some s -> s | None -> assert false
  in
  let t_e3 =
    Test.make ~name:"e3-malignant-transition-n8"
      (Staged.stage (fun () -> ignore (State.trans e3_state (act "b" []))))
  in
  (* E4: word problem, naive vs. state model, |w| = 10 *)
  let w10 = e4_word 5 in
  let t_e4n =
    Test.make ~name:"e4-word-naive-10"
      (Staged.stage (fun () -> ignore (Semantics.word e4_expr w10)))
  in
  let t_e4s =
    Test.make ~name:"e4-word-state-model-10"
      (Staged.stage (fun () -> ignore (Engine.word e4_expr w10)))
  in
  (* E6: one manager round trip on the combined constraint *)
  let mgr = Interaction_manager.Manager.create (Medical.combined_constraint ()) in
  let t_e6 =
    Test.make ~name:"e6-manager-permitted"
      (Staged.stage (fun () ->
           ignore (Interaction_manager.Manager.permitted mgr (act "call_s" [ "p1"; "sono" ]))))
  in
  (* E7: full protocol simulations *)
  let e7e = Syntax.parse_exn "mutex(go(1) - done(1), go(2) - done(2))" in
  let e7scripts =
    [ ("c1", Syntax.parse_word_exn "go(1) done(1)");
      ("c2", Syntax.parse_word_exn "go(2) done(2)")
    ]
  in
  let t_e7p =
    Test.make ~name:"e7-protocol-polling"
      (Staged.stage (fun () ->
           ignore
             (Interaction_manager.Protocol.simulate ~think_rounds:8
                Interaction_manager.Protocol.Polling e7e ~scripts:e7scripts)))
  in
  let t_e7s =
    Test.make ~name:"e7-protocol-subscribing"
      (Staged.stage (fun () ->
           ignore
             (Interaction_manager.Protocol.simulate ~think_rounds:8
                Interaction_manager.Protocol.Subscribing e7e ~scripts:e7scripts)))
  in
  (* E8: full adapter simulations on a small ensemble *)
  let cons8 = Medical.combined_constraint ~capacity:2 () in
  let cases8 = Medical.ensemble ~patients:1 in
  let t_e8w =
    Test.make ~name:"e8-adapted-worklists"
      (Staged.stage (fun () ->
           ignore
             (Adapter.run
                { Adapter.default_config with adaptation = Adapter.Adapted_worklists }
                ~constraints:cons8 ~cases:cases8)))
  in
  let t_e8e =
    Test.make ~name:"e8-adapted-engine"
      (Staged.stage (fun () ->
           ignore
             (Adapter.run
                { Adapter.default_config with adaptation = Adapter.Adapted_engine }
                ~constraints:cons8 ~cases:cases8)))
  in
  (* per-operator transition cost: one steady-state transition each *)
  let op_bench name src script probe =
    let e = Syntax.parse_exn src in
    let st =
      match State.trans_word (State.init e) (Syntax.parse_word_exn script) with
      | Some s -> s
      | None -> assert false
    in
    let a = Syntax.parse_action_exn probe in
    Test.make ~name (Staged.stage (fun () -> ignore (State.trans st a)))
  in
  let per_operator =
    [ op_bench "op-seq" "a - b - c - d" "a b" "c";
      op_bench "op-seqiter" "(a - b)*" "a b a" "b";
      op_bench "op-par" "(a - b) || (c - d)" "a c" "b";
      op_bench "op-pariter" "(a - b)#" "a a a" "b";
      op_bench "op-or" "(a - b) | (a - c)" "a" "b";
      op_bench "op-and" "(a - b)* & (a - b - a - b)*" "a b" "a";
      op_bench "op-sync" "(a - b)* @ (b - c)*" "a b" "c";
      op_bench "op-someq" "some x: (a(x) - b(x))*" "a(1)" "b(1)";
      op_bench "op-allq" "all x: [(a(x) - b(x))*]" "a(1) a(2) a(3)" "b(2)";
      op_bench "op-syncq" "sync x: (a(x) - b(x))*" "a(1) a(2)" "b(1)";
      op_bench "op-andq" "conj x: (z | a(x))*" "z z" "z"
    ]
  in
  let tests =
    Test.make_grouped ~name:"interaction"
      ([ t_e1; t_e2; t_e3; t_e4n; t_e4s; t_e6; t_e7p; t_e7s; t_e8w; t_e8e ]
      @ per_operator)
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
  in
  pf "%-42s %18s@." "benchmark" "ns/run";
  List.iter
    (fun (name, est) -> pf "%-42s %18.1f@." name est)
    (List.sort compare rows)

(* ------------------------------------------------------------------ E21 *)

(* Shared-memory scaling of the compiled kernels themselves: with the
   global hash-cons (PR 9) an automaton row's states mean the same thing
   on every domain, so N domains can walk ONE shared automaton / ONE
   shared VM program instead of compiling N private copies; and a coupling
   the alphabet partition cannot split can still be sharded by operand
   groups under the optimistic protocol ({!Speculate}), priced here
   against the defensive two-phase baseline. *)

let e21_domain_counts = [ 1; 2; 4; 8 ]
let e21_walks = 240 (* total word walks per configuration, split over domains *)

(* the overlapping coupling: k operands that all share the action [tick] —
   one alphabet component, so Pengine/Sharded cannot split it *)
let e21_overlap_expr ~k =
  Expr.sync_list
    (List.init k (fun i ->
         Syntax.parse_exn (Printf.sprintf "(a%d - tick - b%d)*" (i + 1) (i + 1))))

(* one unanimous round: every operand reaches its tick point before the
   tick, so the owners agree and the speculative fast path commits the
   whole batch without per-action coordination *)
let e21_overlap_round ~k =
  List.init k (fun i -> act (Printf.sprintf "a%d" (i + 1)) [])
  @ (act "tick" [] :: List.init k (fun i -> act (Printf.sprintf "b%d" (i + 1)) []))

(* one adversarial round: a tick arrives when only shard 0's operands
   (round-robin grouping: indices ≡ 0 mod shards) are ready — shard 0
   accepts, every other owner rejects, the mixed verdicts force a
   conflict, rollback and serial retry (where the tick is rejected, as
   the sequential oracle demands); the round then completes cleanly *)
let e21_conflict_round ~k ~shards =
  let ready, rest = List.partition (fun i -> i mod shards = 0) (List.init k Fun.id) in
  let a i = act (Printf.sprintf "a%d" (i + 1)) [] in
  let b i = act (Printf.sprintf "b%d" (i + 1)) [] in
  List.map a ready
  @ [ act "tick" [] ] (* mixed verdicts: conflict *)
  @ List.map a rest
  @ [ act "tick" [] ] (* unanimous *)
  @ List.map b (List.init k Fun.id)

let e21 () =
  header "E21" "shared-memory scaling: one automaton/VM, many domains (PR 9)"
    "global hash-cons lets all domains walk one compiled kernel; optimistic sharding beats two-phase on overlap";
  let cores = Domain.recommended_domain_count () in
  record "e21" "host_cores" (float_of_int cores);
  (* --- A: one shared automaton, walked from 1/2/4/8 domains ----------- *)
  let word = List.concat (List.init 20 (fun _ -> List.map (fun n -> act n []) e1_script)) in
  let wn = List.length word in
  record "e21" "word_actions" (float_of_int wn);
  record "e21" "walks" (float_of_int e21_walks);
  pf "word: the E1 script x20 (%d actions), %d walks split over the domains@.@."
    wn e21_walks;
  pf "%16s %8s %16s %10s@." "kernel" "domains" "actions/s" "speedup";
  let scale_rows label runner d1 =
    List.iter
      (fun d ->
        Pool.with_pool ~domains:d (fun pool ->
            let dt =
              steady
                ~mk:(fun () -> ())
                ~run:(fun () ->
                  ignore
                    (Pool.map_workers pool
                       (List.init d (fun _ () ->
                            for _ = 1 to e21_walks / d do
                              runner ()
                            done))))
            in
            let tp = float_of_int (e21_walks * wn) /. dt in
            if d = 1 then d1 := tp;
            record "e21" (Printf.sprintf "%s_shared_throughput_d%d" label d) tp;
            record "e21" (Printf.sprintf "%s_shared_speedup_d%d" label d) (tp /. !d1);
            pf "%16s %8d %16.0f %9.2fx@." label d tp (tp /. !d1)))
      e21_domain_counts
  in
  Automaton.reset_shared ();
  let auto = Automaton.shared e1_expr in
  let auto_d1 = ref nan in
  scale_rows "automaton" (fun () -> assert (Automaton.run_word auto word <> None)) auto_d1;
  (match Bytecode.shared e1_expr with
  | None -> pf "%16s %8s (E1 does not compile to bytecode — skipped)@." "vm" "-"
  | Some vm ->
    let vm_d1 = ref nan in
    scale_rows "vm" (fun () -> assert (Bytecode.Vm.word vm word <> None)) vm_d1);
  (* --- B: shared instance vs a private instance per domain ------------ *)
  (* the disjoint E17 coupling, at 4 domains: "shared" amortizes one row
     fill across every walker, "private" pays compilation and first-walk
     fill in each domain on every repetition *)
  let ce = e17_expr 8 in
  let cw = e17_workload ~departments:(e17_departments 8) ~patients:4 in
  let cwalks = 80 and d = 4 in
  Pool.with_pool ~domains:d (fun pool ->
      let sweep mk_kernel =
        steady
          ~mk:(fun () -> ())
          ~run:(fun () ->
            ignore
              (Pool.map_workers pool
                 (List.init d (fun _ () ->
                      let a = mk_kernel () in
                      for _ = 1 to cwalks / d do
                        assert (Automaton.run_word a cw <> None)
                      done))))
      in
      Automaton.reset_shared ();
      let shared_a = Automaton.shared ce in
      let t_shared = sweep (fun () -> shared_a) in
      let t_private = sweep (fun () -> Automaton.create ce) in
      let n = float_of_int (cwalks * List.length cw) in
      record "e21" "coupling_shared_throughput_d4" (n /. t_shared);
      record "e21" "coupling_private_throughput_d4" (n /. t_private);
      record "e21" "coupling_shared_vs_private_d4" (t_private /. t_shared);
      pf "@.E17 coupling at %d domains: shared automaton %.0f actions/s, private-per-domain %.0f (%.2fx)@."
        d (n /. t_shared) (n /. t_private) (t_private /. t_shared));
  (* --- C: optimistic cross-shard execution on the overlapping coupling - *)
  let k = 8 and shards = 4 and rounds = 60 in
  let oe = e21_overlap_expr ~k in
  let batches = List.init rounds (fun _ -> e21_overlap_round ~k) in
  let n = float_of_int (rounds * List.length (e21_overlap_round ~k)) in
  record "e21" "overlap_operands" (float_of_int k);
  record "e21" "overlap_shards" (float_of_int shards);
  record "e21" "overlap_actions" n;
  pf "@.overlapping coupling: %d operands sharing `tick`, %d shards, %d rounds@."
    k shards rounds;
  (* sequential oracle: the batched protocols must reproduce its rejects *)
  let oracle_rej = Engine.feed (Engine.create oe) (List.concat batches) in
  assert (oracle_rej = []);
  Pool.with_pool ~domains:shards (fun pool ->
      let run sp =
        List.iter (fun b -> assert (Speculate.feed sp b = [])) batches
      in
      let t_opt =
        steady ~mk:(fun () -> Speculate.create ~pool ~shards oe) ~run
      in
      let t_two =
        steady
          ~mk:(fun () -> Speculate.create ~pool ~protocol:Speculate.Two_phase ~shards oe)
          ~run
      in
      record "e21" "overlap_optimistic_throughput" (n /. t_opt);
      record "e21" "overlap_two_phase_throughput" (n /. t_two);
      record "e21" "overlap_speculation_speedup" (t_two /. t_opt);
      pf "%16s %16.0f actions/s@." "optimistic" (n /. t_opt);
      pf "%16s %16.0f actions/s  (speculation %.2fx)@." "two-phase" (n /. t_two)
        (t_two /. t_opt);
      (* instrumented single pass: the clean workload must commit purely
         speculatively *)
      Speculate.reset_stats ();
      run (Speculate.create ~pool ~shards oe);
      let st = Speculate.stats () in
      assert (st.Speculate.conflicts = 0);
      record "e21" "overlap_clean_batches" (float_of_int st.Speculate.batches);
      record "e21" "overlap_clean_conflicts" (float_of_int st.Speculate.conflicts);
      (* forced conflicts: the adversarial rounds must conflict, retry
         serially, and still match the sequential oracle *)
      let cbatch = e21_conflict_round ~k ~shards in
      let crounds = 20 in
      let coracle =
        Engine.feed (Engine.create oe)
          (List.concat (List.init crounds (fun _ -> cbatch)))
      in
      Speculate.reset_stats ();
      let sp = Speculate.create ~pool ~shards oe in
      let rej =
        List.concat (List.init crounds (fun _ -> Speculate.feed sp cbatch))
      in
      assert (rej = coracle);
      let st = Speculate.stats () in
      assert (st.Speculate.conflicts > 0);
      let rate =
        float_of_int st.Speculate.conflicts
        /. float_of_int (max 1 st.Speculate.speculative)
      in
      record "e21" "overlap_forced_conflicts" (float_of_int st.Speculate.conflicts);
      record "e21" "overlap_forced_conflict_rate" rate;
      record "e21" "overlap_forced_retries" (float_of_int st.Speculate.retries);
      record "e21" "overlap_forced_serial_actions"
        (float_of_int st.Speculate.serial_actions);
      pf "forced-conflict stream: %d/%d speculative batches conflicted (rate %.2f), %d serial retries, oracle agrees@."
        st.Speculate.conflicts st.Speculate.speculative rate st.Speculate.retries);
  if cores < 4 then
    pf "@.(this host has %d core(s) — the d>1 rows time-slice and cannot show real scaling)@."
      cores

(* ------------------------------------------------------------------ E22 *)

(* Runtime-health profiles of the scaling workloads themselves: with the
   contention and GC probes (PR 10) armed, re-run E21's two extremes — the
   disjoint shared-kernel word walk and the overlapping speculative
   coupling — at 1/4/8 domains and record what the locks actually did.
   The claim under test is that the hash-cons stripes and the automaton
   fill lock are *cold* in steady state (fill fires once per missing row,
   stripes once per new state), so throughput scaling is not serialized on
   them; the overlap rows additionally split the speculation time into
   sweep / validate / rollback / serial so E21's conflict rates gain a
   "where did the time go" breakdown. *)

let e22_domain_counts = [ 1; 4; 8 ]

let e22_sites =
  [ "state.stripe"; "automaton.fill"; "automaton.shared"; "bytecode.shared";
    "pool.submit" ]

let e22 () =
  header "E22" "runtime-health profiles: lock contention & GC under the scaling workloads (PR 10)"
    "the stripe and fill locks must be cold; speculation time splits into sweep/validate/rollback/serial";
  let was_on = !Telemetry.on in
  Telemetry.enable ();
  Prof.Gcprof.install ();
  let cores = Domain.recommended_domain_count () in
  record "e22" "host_cores" (float_of_int cores);
  let sanitize s = String.map (fun c -> if c = '.' then '_' else c) s in
  (* one profiled region: reset the probe state, run, then record every
     tracked lock site (zeros included — the cold-lock claim *is* the
     zero) and the GC deltas under deterministic keys *)
  let profile label actions run =
    Prof.Lock.reset ();
    Prof.Gcprof.reset ();
    Prof.Gcprof.sample ();
    run ();
    Prof.Gcprof.sample ();
    record "e22" (label ^ "_actions") (float_of_int actions);
    let sites = Prof.Lock.stats () in
    List.iter
      (fun site ->
        let k suffix =
          Printf.sprintf "%s_lock_%s_%s" label (sanitize site) suffix
        in
        match
          List.find_opt (fun (s : Prof.Lock.stats) -> s.Prof.Lock.site_name = site) sites
        with
        | None ->
          record "e22" (k "acq") 0.;
          record "e22" (k "contended") 0.;
          record "e22" (k "wait_ns") 0.;
          record "e22" (k "wait_p99_ns") 0.
        | Some s ->
          record "e22" (k "acq") (float_of_int s.Prof.Lock.acquisitions);
          record "e22" (k "contended") (float_of_int s.Prof.Lock.contended);
          record "e22" (k "wait_ns") (float_of_int s.Prof.Lock.wait_ns);
          record "e22" (k "wait_p99_ns") s.Prof.Lock.p99_ns)
      e22_sites;
    let g = Prof.Gcprof.stats () in
    record "e22" (label ^ "_gc_minor_words") g.Prof.Gcprof.minor_words;
    record "e22" (label ^ "_gc_promoted_words") g.Prof.Gcprof.promoted_words;
    record "e22" (label ^ "_gc_minor_collections")
      (float_of_int g.Prof.Gcprof.minor_collections);
    record "e22" (label ^ "_gc_major_collections")
      (float_of_int g.Prof.Gcprof.major_collections);
    let hot =
      List.filter (fun (s : Prof.Lock.stats) -> s.Prof.Lock.acquisitions > 0) sites
    in
    pf "%-14s %8d actions  minor words %12.0f  hot sites: %s@." label actions
      g.Prof.Gcprof.minor_words
      (if hot = [] then "(none)"
       else
         String.concat ", "
           (List.map
              (fun (s : Prof.Lock.stats) ->
                Printf.sprintf "%s acq=%d contended=%d" s.Prof.Lock.site_name
                  s.Prof.Lock.acquisitions s.Prof.Lock.contended)
              hot))
  in
  let word =
    List.concat (List.init 20 (fun _ -> List.map (fun n -> act n []) e1_script))
  in
  let wn = List.length word in
  pf "word: the E1 script x20 (%d actions), %d walks split over the domains@.@."
    wn e21_walks;
  List.iter
    (fun d ->
      (* disjoint: every domain walks the one shared automaton; a fresh
         registry per configuration so each row shows the full lazy fill *)
      Automaton.reset_shared ();
      let auto = Automaton.shared e1_expr in
      Pool.with_pool ~domains:d (fun pool ->
          profile (Printf.sprintf "disjoint_d%d" d) (e21_walks * wn) (fun () ->
              ignore
                (Pool.map_workers pool
                   (List.init d (fun _ () ->
                        for _ = 1 to e21_walks / d do
                          assert (Automaton.run_word auto word <> None)
                        done)))));
      (* overlap: the speculative coupling, clean + adversarial rounds *)
      let k = 8 in
      let shards = max 2 (min d k) in
      let oe = e21_overlap_expr ~k in
      let rounds = 30 in
      let batches =
        List.concat
          (List.init rounds (fun _ ->
               [ e21_overlap_round ~k; e21_conflict_round ~k ~shards ]))
      in
      let n =
        List.fold_left (fun a b -> a + List.length b) 0 batches
      in
      Pool.with_pool ~domains:d (fun pool ->
          let sp = Speculate.create ~pool ~shards oe in
          Speculate.reset_stats ();
          profile (Printf.sprintf "overlap_d%d" d) n (fun () ->
              List.iter (fun b -> ignore (Speculate.feed sp b)) batches);
          let st = Speculate.stats () in
          let label = Printf.sprintf "overlap_d%d" d in
          record "e22" (label ^ "_conflicts") (float_of_int st.Speculate.conflicts);
          record "e22" (label ^ "_sweep_ns") (float_of_int st.Speculate.sweep_ns);
          record "e22" (label ^ "_validate_ns")
            (float_of_int st.Speculate.validate_ns);
          record "e22" (label ^ "_rollback_ns")
            (float_of_int st.Speculate.rollback_ns);
          record "e22" (label ^ "_serial_ns") (float_of_int st.Speculate.serial_ns);
          pf "%-14s speculation time (us): sweep %.1f validate %.1f rollback %.1f serial %.1f (%d conflicts)@."
            ""
            (float_of_int st.Speculate.sweep_ns /. 1e3)
            (float_of_int st.Speculate.validate_ns /. 1e3)
            (float_of_int st.Speculate.rollback_ns /. 1e3)
            (float_of_int st.Speculate.serial_ns /. 1e3)
            st.Speculate.conflicts))
    e22_domain_counts;
  if not was_on then Telemetry.disable ();
  if cores < 4 then
    pf "@.(this host has %d core(s) — contention at d>1 is time-sliced, not parallel)@."
      cores

(* Speculative-vs-sequential oracle agreement on an overlapping coupling,
   run by `smoke --domains N` in CI: the optimistic protocol must
   reproduce the sequential engine's rejects and trace exactly — including
   across forced conflicts — and the conflict counters are recorded so the
   smoke artifact carries them. *)
let speculate_smoke ~domains =
  let k = 6 in
  let shards = max 2 (min domains k) in
  let e = e21_overlap_expr ~k in
  let fail fmt =
    Format.kasprintf
      (fun m ->
        Format.eprintf "speculate smoke FAILED: %s@." m;
        exit 1)
      fmt
  in
  let batches =
    List.concat
      (List.init 5 (fun _ ->
           [ e21_overlap_round ~k; e21_conflict_round ~k ~shards ]))
  in
  let oracle = Engine.create e in
  let oracle_rej = Engine.feed oracle (List.concat batches) in
  Speculate.reset_stats ();
  Pool.with_pool ~domains (fun pool ->
      let sp = Speculate.create ~pool ~shards e in
      let rej = List.concat_map (Speculate.feed sp) batches in
      if rej <> oracle_rej then
        fail "rejects differ from the sequential oracle (seq %d, spec %d)"
          (List.length oracle_rej) (List.length rej);
      if Speculate.trace sp <> Engine.trace oracle then
        fail "merged trace differs from the sequential oracle";
      if Speculate.is_final sp <> Engine.is_final oracle then
        fail "finality differs from the sequential oracle");
  let st = Speculate.stats () in
  if st.Speculate.conflicts = 0 then
    fail "adversarial rounds produced no conflicts (protocol not exercised)";
  record "smoke_speculate" "domains" (float_of_int domains);
  record "smoke_speculate" "shards" (float_of_int shards);
  record "smoke_speculate" "batches" (float_of_int st.Speculate.batches);
  record "smoke_speculate" "conflicts" (float_of_int st.Speculate.conflicts);
  record "smoke_speculate" "conflict_actions"
    (float_of_int st.Speculate.conflict_actions);
  record "smoke_speculate" "retries" (float_of_int st.Speculate.retries);
  record "smoke_speculate" "serial_actions"
    (float_of_int st.Speculate.serial_actions);
  record "smoke_speculate" "agree" 1.;
  pf "@.speculate smoke (%d domains, %d shards): optimistic execution agrees with the sequential oracle across %d conflicts@."
    domains shards st.Speculate.conflicts

(* ----------------------------------------------------------------------- *)

let experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15);
    ("e16", e16); ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20);
    ("e21", e21); ("e22", e22); ("bechamel", bechamel)
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec extract_domains acc = function
    | "--domains" :: n :: rest -> (
      match int_of_string_opt n with
      | Some d when d > 0 -> (d, List.rev_append acc rest)
      | Some _ | None ->
        Format.eprintf "--domains expects a positive integer@.";
        exit 2)
    | x :: rest -> extract_domains (x :: acc) rest
    | [] -> (1, List.rev acc)
  in
  let domains, args = extract_domains [] args in
  let rec extract_engine acc = function
    | "--engine" :: name :: rest -> (
      match Engine.backend_of_string name with
      | Ok pref ->
        Engine.set_backend pref;
        (List.rev_append acc rest)
      | Error m ->
        Format.eprintf "%s@." m;
        exit 2)
    | x :: rest -> extract_engine (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_engine [] args in
  let smoke = List.mem "smoke" args in
  let trace_oc = ref None in
  if smoke then begin
    (* CI smoke run: collect a telemetry trace alongside the tables, so the
       JSONL artifact exercises the whole sink path on every push *)
    let oc = Out_channel.open_text "bench_trace.jsonl" in
    trace_oc := Some oc;
    at_exit (fun () -> Out_channel.close oc);
    Telemetry.add_sink (Telemetry.jsonl_sink (output_string oc));
    Telemetry.enable ()
  end;
  let crash = List.mem "crash-smoke" args in
  let names = List.filter (fun a -> a <> "smoke" && a <> "crash-smoke") args in
  let selected =
    if smoke && names = [] then
      List.filter
        (fun (n, _) -> List.mem n [ "e1"; "e5"; "e16"; "e18"; "e19"; "e20"; "e22" ])
        experiments
    else if crash && names = [] then []
    else
      match names with
      | [] -> List.filter (fun (n, _) -> n <> "bechamel") experiments
      | names ->
        List.map
          (fun n ->
            match List.assoc_opt (String.lowercase_ascii n) experiments with
            | Some f -> (n, f)
            | None ->
              Format.eprintf "unknown experiment %S (known: %s, smoke)@." n
                (String.concat ", " (List.map fst experiments));
              exit 2)
          names
  in
  pf "Interaction expressions and graphs — experiment harness@.";
  pf "(reproduces the evaluation artifacts of Heinlein, ICDE 2001)@.";
  List.iter (fun (_, f) -> f ()) selected;
  (* `smoke --domains N`: the sharded evaluation must agree with the
     sequential oracle, or the run (and the CI job) fails *)
  if smoke && domains > 1 then parallel_smoke ~domains;
  (* `smoke --domains N` also drives the optimistic cross-shard protocol
     through forced conflicts against the sequential oracle *)
  if smoke && domains > 1 then speculate_smoke ~domains;
  (* smoke also cross-checks the compiled kernel against the interpreted
     oracle (sequential always; sharded too when --domains > 1) *)
  if smoke then compiled_smoke ~domains;
  (* smoke finally replays scripted queued requests under per-request
     traces and re-analyzes its own JSONL artifact (exit 1 on orphaned
     spans or degenerate attribution) *)
  if smoke then
    latency_smoke
      ~flush_trace:(fun () -> Option.iter Out_channel.flush !trace_oc)
      ();
  (* `crash-smoke`: the CI kill–replay–verify canary (exit 1 on divergence,
     diverging store left in ./crash-smoke-store for the artifact upload) *)
  if crash then crash_smoke ();
  record_cache_stats ();
  write_bench_json ~domains "BENCH_pr10.json";
  pf "@.wrote BENCH_pr10.json@.";
  pf "@."
